//! Experiment workloads: synthetic stand-ins for the paper's Twitter and LiveJournal
//! graphs, plus the scale knobs shared by every figure.

use frogwild::reference::exact_pagerank;
use frogwild_graph::generators::{livejournal_like, twitter_like};
use frogwild_graph::DiGraph;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Scale of the experiment suite.
///
/// The paper runs on the real Twitter (41.6M vertices / 1.4B edges) and LiveJournal
/// (4.8M / 69M) graphs on clusters of 12–24 EC2 / VirtualBox machines. The harness
/// reproduces the *shape* of every figure on synthetic graphs that fit a single
/// machine; `Scale` controls how large they are. `FROGWILD_SCALE=tiny|small|medium`
/// selects a preset (default `small`).
#[derive(Clone, Debug, PartialEq)]
pub struct Scale {
    /// Vertices in the Twitter-shaped graph (average out-degree ≈ 34).
    pub twitter_vertices: usize,
    /// Vertices in the LiveJournal-shaped graph (average out-degree ≈ 14).
    pub livejournal_vertices: usize,
    /// Baseline number of walkers, playing the role of the paper's 800K.
    pub walkers: u64,
    /// Cluster sizes swept in Figure 1 (the paper uses 12, 16, 20, 24).
    pub machine_counts: Vec<usize>,
    /// Iteration cap used for the "exact" engine PageRank baseline.
    pub exact_pr_iterations: usize,
    /// Base random seed for graph generation and partitioning.
    pub seed: u64,
}

impl Scale {
    /// Minimal scale for unit tests and smoke benchmarks (seconds end-to-end).
    pub fn tiny() -> Self {
        Scale {
            twitter_vertices: 1_500,
            livejournal_vertices: 1_500,
            walkers: 1_000,
            machine_counts: vec![4, 8],
            exact_pr_iterations: 20,
            seed: 0xBEEF,
        }
    }

    /// Default scale: the full figure suite finishes in a few minutes on a laptop.
    ///
    /// The walker count keeps the paper's *regime* (walkers ≪ vertices, matching the
    /// LiveJournal ratio of roughly one walker per five vertices) rather than the
    /// paper's absolute 800K, so the per-iteration cost advantage the figures measure
    /// comes from the same mechanism as in the paper: only a small fraction of the
    /// vertices is active in any FrogWild superstep.
    pub fn small() -> Self {
        Scale {
            twitter_vertices: 40_000,
            livejournal_vertices: 40_000,
            walkers: 8_000,
            machine_counts: vec![12, 16, 20, 24],
            exact_pr_iterations: 30,
            seed: 0xF20C,
        }
    }

    /// Larger scale for overnight runs; still single-machine.
    pub fn medium() -> Self {
        Scale {
            twitter_vertices: 200_000,
            livejournal_vertices: 200_000,
            walkers: 40_000,
            machine_counts: vec![12, 16, 20, 24],
            exact_pr_iterations: 30,
            seed: 0xF20C,
        }
    }

    /// Reads `FROGWILD_SCALE` from the environment (`tiny`, `small`, `medium`),
    /// defaulting to [`Scale::small`].
    pub fn from_env() -> Self {
        match std::env::var("FROGWILD_SCALE").as_deref() {
            Ok("tiny") => Scale::tiny(),
            Ok("medium") => Scale::medium(),
            _ => Scale::small(),
        }
    }

    /// The walker counts swept in Figures 6 and 8 (the paper sweeps 400K–1.4M around
    /// its 800K baseline; we sweep the same multipliers around `walkers`).
    pub fn walker_sweep(&self) -> Vec<u64> {
        [0.5, 0.75, 1.0, 1.25, 1.5, 1.75]
            .iter()
            .map(|m| (self.walkers as f64 * m) as u64)
            .collect()
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::small()
    }
}

/// A generated workload: the graph plus its exact PageRank vector (the ground truth all
/// accuracy metrics are computed against).
pub struct Workload {
    /// Dataset label used in table titles ("Twitter-shaped", "LiveJournal-shaped").
    pub name: &'static str,
    /// The graph.
    pub graph: DiGraph,
    /// Exact PageRank of the graph (serial power iteration, tight tolerance).
    pub truth: Vec<f64>,
}

impl Workload {
    fn build(name: &'static str, graph: DiGraph) -> Self {
        let truth = exact_pagerank(&graph, 0.15, 200, 1e-10).scores;
        Workload { name, graph, truth }
    }
}

/// The Twitter-shaped workload for the given scale.
pub fn twitter_workload(scale: &Scale) -> Workload {
    let mut rng = SmallRng::seed_from_u64(scale.seed ^ 0x7017);
    Workload::build(
        "Twitter-shaped",
        twitter_like(scale.twitter_vertices, &mut rng),
    )
}

/// The LiveJournal-shaped workload for the given scale.
pub fn livejournal_workload(scale: &Scale) -> Workload {
    let mut rng = SmallRng::seed_from_u64(scale.seed ^ 0x11FE);
    Workload::build(
        "LiveJournal-shaped",
        livejournal_like(scale.livejournal_vertices, &mut rng),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        let tiny = Scale::tiny();
        let small = Scale::small();
        let medium = Scale::medium();
        assert!(tiny.twitter_vertices < small.twitter_vertices);
        assert!(small.twitter_vertices < medium.twitter_vertices);
        assert_eq!(small.machine_counts, vec![12, 16, 20, 24]);
    }

    #[test]
    fn walker_sweep_brackets_the_baseline() {
        let s = Scale::tiny();
        let sweep = s.walker_sweep();
        assert_eq!(sweep.len(), 6);
        assert!(sweep[0] < s.walkers);
        assert!(*sweep.last().unwrap() > s.walkers);
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn workloads_have_truth_vectors() {
        let w = twitter_workload(&Scale::tiny());
        assert_eq!(w.truth.len(), w.graph.num_vertices());
        let total: f64 = w.truth.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(w.graph.has_no_dangling());

        let lj = livejournal_workload(&Scale::tiny());
        assert_eq!(lj.name, "LiveJournal-shaped");
        assert!(lj.graph.num_edges() < w.graph.num_edges());
    }
}
