//! Exporters ([`Timeline::to_chrome_json`], [`Timeline::to_csv`]) and the minimal
//! in-repo Chrome trace-event JSON validity check ([`validate_chrome_json`]).

use std::fmt::Write as _;

use crate::timeline::{Timeline, TimelineEntry};

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_chrome_event(out: &mut String, entry: &TimelineEntry) {
    out.push_str("{\"name\":");
    push_json_string(out, entry.name);
    out.push_str(",\"cat\":");
    push_json_string(out, entry.target);
    let ph = if entry.is_instant() { "i" } else { "X" };
    let _ = write!(
        out,
        ",\"ph\":\"{ph}\",\"ts\":{},\"pid\":{},\"tid\":{}",
        entry.start_us, entry.key.pid, entry.key.tid
    );
    if !entry.is_instant() {
        let _ = write!(out, ",\"dur\":{}", entry.dur_us);
    } else {
        // Instant scope: thread-scoped, so Perfetto draws it on its lane.
        out.push_str(",\"s\":\"t\"");
    }
    let _ = write!(out, ",\"args\":{{\"seq\":{}", entry.key.seq);
    for (name, value) in &entry.counters {
        out.push(',');
        push_json_string(out, name);
        let _ = write!(out, ":{value}");
    }
    out.push_str("}}");
}

impl Timeline {
    /// Renders the timeline as Chrome trace-event JSON — load the file in
    /// `chrome://tracing` or <https://ui.perfetto.dev>. Entries are emitted in the
    /// deterministic timeline order; under a logical clock the output is
    /// byte-stable across runs.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(self.entries().len() * 96 + 32);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, entry) in self.entries().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            push_chrome_event(&mut out, entry);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Renders the timeline as flat CSV: one row per record, counters packed into
    /// the final column as `name=value` pairs separated by `;`.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.entries().len() * 64 + 64);
        out.push_str("seq,pid,tid,lane,ordinal,kind,name,target,start_us,dur_us,counters\n");
        for entry in self.entries() {
            let kind = if entry.is_instant() {
                "instant"
            } else {
                "span"
            };
            let _ = write!(
                out,
                "{},{},{},{},{},{kind},{},{},{},{},",
                entry.key.seq,
                entry.key.pid,
                entry.key.tid,
                entry.key.lane,
                entry.ordinal,
                entry.name,
                entry.target,
                entry.start_us,
                entry.dur_us
            );
            for (i, (name, value)) in entry.counters.iter().enumerate() {
                if i > 0 {
                    out.push(';');
                }
                let _ = write!(out, "{name}={value}");
            }
            out.push('\n');
        }
        out
    }
}

/// Validates that `text` is well-formed JSON shaped like a Chrome trace: one
/// top-level object whose `"traceEvents"` member is an array of event objects, each
/// carrying at least `"name"`, `"ph"`, `"ts"`, `"pid"` and `"tid"`.
///
/// Returns the number of trace events. This is the repo's own validator — CI and
/// the golden tests use it so no external JSON tooling is needed.
///
/// # Errors
///
/// A human-readable description of the first problem found (syntax error, missing
/// `traceEvents`, or an event missing a required member).
pub fn validate_chrome_json(text: &str) -> Result<usize, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        at: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.at != parser.bytes.len() {
        return Err(format!("trailing bytes at offset {}", parser.at));
    }
    let Json::Object(members) = value else {
        return Err("top level is not a JSON object".to_string());
    };
    let Some(events) = members
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
    else {
        return Err("missing \"traceEvents\" member".to_string());
    };
    let Json::Array(events) = events else {
        return Err("\"traceEvents\" is not an array".to_string());
    };
    for (i, event) in events.iter().enumerate() {
        let Json::Object(fields) = event else {
            return Err(format!("traceEvents[{i}] is not an object"));
        };
        for required in ["name", "ph", "ts", "pid", "tid"] {
            if !fields.iter().any(|(k, _)| k == required) {
                return Err(format!("traceEvents[{i}] is missing \"{required}\""));
            }
        }
    }
    Ok(events.len())
}

/// A fully parsed JSON value. Objects keep insertion order in a `Vec` — no hash
/// containers, per the workspace determinism contract.
enum Json {
    Null,
    Bool,
    Number,
    String,
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.at += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), String> {
        match self.bump() {
            Some(b) if b == byte => Ok(()),
            got => Err(format!(
                "expected '{}' at offset {}, got {:?}",
                byte as char,
                self.at.saturating_sub(1),
                got.map(|b| b as char)
            )),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        let rest = self.bytes.get(self.at..).unwrap_or(&[]);
        if rest.starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(())
        } else {
            Err(format!("invalid literal at offset {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(|_| Json::String),
            Some(b't') => self.literal("true").map(|_| Json::Bool),
            Some(b'f') => self.literal("false").map(|_| Json::Bool),
            Some(b'n') => self.literal("null").map(|_| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number().map(|_| Json::Number),
            other => Err(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.at
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(members)),
                got => {
                    return Err(format!(
                        "expected ',' or '}}' at offset {}, got {:?}",
                        self.at.saturating_sub(1),
                        got.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                got => {
                    return Err(format!(
                        "expected ',' or ']' at offset {}, got {:?}",
                        self.at.saturating_sub(1),
                        got.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b' | b'f') => out.push(' '),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit = match self.bump() {
                                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                                _ => return Err(format!("bad \\u escape at offset {}", self.at)),
                            };
                            code = code * 16 + digit;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(format!("bad escape at offset {}", self.at)),
                },
                Some(b) if b >= 0x20 => {
                    // Re-decode multi-byte UTF-8 sequences by byte; validity of the
                    // source &str guarantees these bytes form valid chars, and the
                    // validator only compares ASCII keys, so raw bytes suffice.
                    out.push(b as char);
                }
                _ => return Err(format!("unterminated string at offset {}", self.at)),
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("bad number at offset {}", self.at));
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(format!("bad number at offset {}", self.at));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(format!("bad number at offset {}", self.at));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{span_meta, SpanKey, TraceConfig, Tracer};

    fn sample() -> Timeline {
        let tracer = Tracer::new(TraceConfig::logical());
        {
            let sink = tracer.sink();
            let mut span = sink.span(span_meta!("gather"), SpanKey::new(0, 1, 2, 0));
            span.counter("edges", 11);
            drop(span);
            sink.event(span_meta!("rejected"), SpanKey::new(3, 0, 0, 9));
        }
        tracer.finish()
    }

    #[test]
    fn chrome_export_round_trips_through_the_validator() {
        let json = sample().to_chrome_json();
        assert_eq!(validate_chrome_json(&json), Ok(2));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"edges\":11"));
    }

    #[test]
    fn empty_timeline_still_validates() {
        let tracer = Tracer::new(TraceConfig::logical());
        let json = tracer.finish().to_chrome_json();
        assert_eq!(validate_chrome_json(&json), Ok(0));
    }

    #[test]
    fn csv_has_one_row_per_record() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("seq,pid,tid,lane"));
        assert!(lines[1].contains("gather"));
        assert!(lines[1].contains("edges=11"));
        assert!(lines[2].contains("instant"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_json("").is_err());
        assert!(validate_chrome_json("[]").is_err());
        assert!(validate_chrome_json("{\"traceEvents\":{}}").is_err());
        assert!(validate_chrome_json("{\"traceEvents\":[{\"name\":\"x\"}]}").is_err());
        assert!(validate_chrome_json("{\"traceEvents\":[]").is_err());
        assert!(validate_chrome_json("{\"traceEvents\":[]} trailing").is_err());
        assert_eq!(validate_chrome_json("{\"traceEvents\":[]}"), Ok(0));
        let ok = "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"dur\":1,\"pid\":0,\"tid\":0}],\"other\":[1.5,-2e3,true,false,null,\"\\u0041\"]}";
        assert_eq!(validate_chrome_json(ok), Ok(1));
    }
}
