//! Per-work-unit record buffers ([`SpanSink`]) and RAII span guards ([`SpanGuard`]).

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use crate::{ClockMode, Inner, Record, SpanKey, SpanMeta};

/// A per-work-unit append buffer for trace records.
///
/// Obtained from [`Tracer::sink`](crate::Tracer::sink). Deliberately `!Sync`
/// (interior mutability via `RefCell`): each worker closure or served query creates
/// its own sink, records into it without locking, and the buffered records flush to
/// the shared tracer exactly once — when the sink drops. For a disabled tracer the
/// sink is inert: no buffer capacity is ever allocated and nothing is recorded.
pub struct SpanSink {
    shared: Option<Arc<Inner>>,
    buf: RefCell<Vec<Record>>,
    next_ordinal: Cell<u32>,
}

impl std::fmt::Debug for SpanSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SpanSink {{ enabled: {}, buffered: {} }}",
            self.shared.is_some(),
            self.buf.borrow().len()
        )
    }
}

impl SpanSink {
    pub(crate) fn new(shared: Option<Arc<Inner>>) -> Self {
        SpanSink {
            shared,
            buf: RefCell::new(Vec::new()),
            next_ordinal: Cell::new(0),
        }
    }

    /// `true` when this sink actually records (its tracer is enabled).
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Opens a span at `key`; the span is recorded when the returned guard drops.
    ///
    /// **Bind the guard** (`let _span = sink.span(..)`). `let _ = sink.span(..)`
    /// drops it immediately and silently records a zero-length span — the
    /// `frogwild-lint` `span-guard` rule flags that pattern.
    #[must_use = "the span ends (and is recorded) when the guard drops; bind it with `let _span = ...`"]
    pub fn span(&self, meta: &'static SpanMeta, key: SpanKey) -> SpanGuard<'_> {
        match &self.shared {
            Some(inner) => {
                let start_us = match inner.clock() {
                    ClockMode::Host => inner.now_us(),
                    ClockMode::Logical => 0,
                };
                SpanGuard {
                    sink: Some(self),
                    meta,
                    key,
                    start_us,
                    counters: Vec::new(),
                }
            }
            None => SpanGuard {
                sink: None,
                meta,
                key,
                start_us: 0,
                counters: Vec::new(),
            },
        }
    }

    /// Records an instant event (e.g. an admission rejection) at `key`.
    pub fn event(&self, meta: &'static SpanMeta, key: SpanKey) {
        self.event_with(meta, key, &[]);
    }

    /// Records an instant event carrying counters.
    pub fn event_with(
        &self,
        meta: &'static SpanMeta,
        key: SpanKey,
        counters: &[(&'static str, u64)],
    ) {
        let Some(inner) = &self.shared else {
            return;
        };
        let at_us = match inner.clock() {
            ClockMode::Host => inner.now_us(),
            ClockMode::Logical => 0,
        };
        self.push(Record {
            meta,
            key,
            ordinal: self.take_ordinal(),
            start_us: at_us,
            dur_us: 0,
            instant: true,
            counters: counters.to_vec(),
        });
    }

    fn take_ordinal(&self) -> u32 {
        let ordinal = self.next_ordinal.get();
        self.next_ordinal.set(ordinal.saturating_add(1));
        ordinal
    }

    fn push(&self, record: Record) {
        self.buf.borrow_mut().push(record);
    }

    fn end_span(
        &self,
        meta: &'static SpanMeta,
        key: SpanKey,
        start_us: u64,
        counters: Vec<(&'static str, u64)>,
    ) {
        let Some(inner) = &self.shared else {
            return;
        };
        let dur_us = match inner.clock() {
            ClockMode::Host => inner.now_us().saturating_sub(start_us),
            ClockMode::Logical => 0,
        };
        self.push(Record {
            meta,
            key,
            ordinal: self.take_ordinal(),
            start_us,
            dur_us,
            instant: false,
            counters,
        });
    }
}

impl Drop for SpanSink {
    /// Flushes the buffered records to the shared tracer (one lock per work unit).
    fn drop(&mut self) {
        if let Some(inner) = &self.shared {
            let buf = self.buf.get_mut();
            if !buf.is_empty() {
                inner.absorb(buf);
            }
        }
    }
}

/// An open span: created by [`SpanSink::span`], recorded when dropped.
///
/// For a disabled tracer the guard is inert — dropping it does nothing and
/// [`counter`](SpanGuard::counter) never allocates.
#[must_use = "the span ends (and is recorded) when the guard drops; bind it with `let _span = ...`"]
#[derive(Debug)]
pub struct SpanGuard<'a> {
    sink: Option<&'a SpanSink>,
    meta: &'static SpanMeta,
    key: SpanKey,
    start_us: u64,
    counters: Vec<(&'static str, u64)>,
}

impl SpanGuard<'_> {
    /// Attaches a named work counter (frontier size, segment hits, …) to the span.
    /// Calling it again with the same name records both values.
    pub fn counter(&mut self, name: &'static str, value: u64) {
        if self.sink.is_some() {
            self.counters.push((name, value));
        }
    }

    /// Attaches a seconds-valued counter, stored as integer microseconds (the
    /// timeline's native unit — keeps exports free of float formatting).
    pub fn counter_seconds(&mut self, name: &'static str, seconds: f64) {
        if self.sink.is_some() {
            let clamped = if seconds > 0.0 { seconds * 1e6 } else { 0.0 };
            self.counters.push((name, clamped as u64));
        }
    }

    /// Like [`counter_seconds`](SpanGuard::counter_seconds), for values derived
    /// from the host wall clock (elapsed timers measured outside the tracer).
    /// Recorded only under [`ClockMode::Host`]: logical traces exclude
    /// wall-clock-derived values so their exports stay byte-stable across runs.
    pub fn wall_counter_seconds(&mut self, name: &'static str, seconds: f64) {
        let host = self
            .sink
            .and_then(|sink| sink.shared.as_ref())
            .is_some_and(|inner| inner.clock() == ClockMode::Host);
        if host {
            self.counter_seconds(name, seconds);
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(sink) = self.sink {
            sink.end_span(
                self.meta,
                self.key,
                self.start_us,
                std::mem::take(&mut self.counters),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{span_meta, SpanKey, TraceConfig, Tracer};

    #[test]
    fn counters_ride_on_the_span() {
        let tracer = Tracer::new(TraceConfig::logical());
        {
            let sink = tracer.sink();
            let mut span = sink.span(span_meta!("work"), SpanKey::new(2, 1, 1, 0));
            span.counter("hits", 5);
            span.counter_seconds("simulated", 0.25);
        }
        let timeline = tracer.finish();
        let entry = &timeline.entries()[0];
        assert_eq!(entry.counters, vec![("hits", 5), ("simulated", 250_000)]);
    }

    #[test]
    fn wall_counters_are_excluded_from_logical_traces() {
        for (config, expected) in [
            (TraceConfig::enabled(), vec![("host", 250_000)]),
            (TraceConfig::logical(), vec![]),
        ] {
            let tracer = Tracer::new(config);
            {
                let sink = tracer.sink();
                let mut span = sink.span(span_meta!("work"), SpanKey::new(0, 0, 0, 0));
                span.wall_counter_seconds("host", 0.25);
            }
            assert_eq!(tracer.finish().entries()[0].counters, expected);
        }
    }

    #[test]
    fn events_are_instant_records() {
        let tracer = Tracer::new(TraceConfig::logical());
        {
            let sink = tracer.sink();
            sink.event_with(
                span_meta!("rejected"),
                SpanKey::new(9, 0, 0, 3),
                &[("batch", 2)],
            );
        }
        let timeline = tracer.finish();
        let entry = &timeline.entries()[0];
        assert!(entry.is_instant());
        assert_eq!(entry.counters, vec![("batch", 2)]);
    }

    #[test]
    fn ordinals_preserve_in_sink_order_under_equal_keys() {
        let tracer = Tracer::new(TraceConfig::logical());
        {
            let sink = tracer.sink();
            let key = SpanKey::new(1, 1, 1, 1);
            drop(sink.span(span_meta!("one"), key));
            drop(sink.span(span_meta!("two"), key));
            drop(sink.span(span_meta!("three"), key));
        }
        let timeline = tracer.finish();
        let names: Vec<&str> = timeline.entries().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["one", "two", "three"]);
    }
}
