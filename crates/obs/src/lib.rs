//! `frogwild_obs` — dependency-free structured tracing for the FrogWild workspace.
//!
//! The crate provides a span/event API whose records merge into **one deterministic
//! timeline**: every record carries a logical [`SpanKey`] — `(seq, pid, tid, lane)`,
//! e.g. `(superstep, machine, batch, phase)` in the engine or `(sequence id, 0, 0,
//! stage)` in the serving front-end — and the merged order is a stable sort over that
//! key plus a per-sink ordinal, **never** wall-clock order. Two runs with the same
//! seed therefore produce the same record order (and, under [`ClockMode::Logical`],
//! byte-identical exports), so traces are diffable across runs.
//!
//! ## Shape
//!
//! * [`Tracer`] — cheaply clonable handle shared by every instrumented layer. A
//!   disabled tracer ([`Tracer::disabled`], the default) carries no buffer, reads no
//!   clock and compiles down to a handful of branch-on-`None` checks.
//! * [`SpanSink`] — a per-work-unit append buffer obtained from [`Tracer::sink`].
//!   Sinks are `!Sync` on purpose: each worker closure / query makes its own, records
//!   lock-free into it, and flushes to the shared tracer buffer once on drop.
//! * [`SpanGuard`] — an RAII guard from [`SpanSink::span`]; records a complete span
//!   when dropped. Attach work counters with [`SpanGuard::counter`]. **Bind the
//!   guard** (`let _span = sink.span(..)`): an unbound `let _ = ...` drops
//!   immediately and silently records a zero-length span (`frogwild-lint`'s
//!   `span-guard` rule flags exactly that).
//! * [`Timeline`] — the merged, deterministically ordered trace from
//!   [`Tracer::finish`], exportable as Chrome trace-event JSON
//!   ([`Timeline::to_chrome_json`], loadable in `chrome://tracing` / Perfetto) or
//!   flat CSV ([`Timeline::to_csv`]), and summarizable as a [`TraceReport`].
//!
//! ## Timing discipline
//!
//! All wall-clock reads live in the one `clock` shim module — the single entry on
//! `frogwild-lint`'s `timing` allowlist for library code. [`ClockMode::Logical`]
//! performs **zero** clock reads: timestamps are assigned at merge time from the
//! deterministic record order.
//!
//! ```
//! use frogwild_obs::{span_meta, SpanKey, TraceConfig, Tracer};
//!
//! let tracer = Tracer::new(TraceConfig::logical());
//! {
//!     let sink = tracer.sink();
//!     let mut _span = sink.span(span_meta!("gather"), SpanKey::new(0, 1, 0, 0));
//!     _span.counter("edges", 42);
//! } // sink drops → records flush
//! let timeline = tracer.finish();
//! assert_eq!(timeline.entries().len(), 1);
//! assert!(timeline.to_chrome_json().contains("\"gather\""));
//! ```

#![warn(missing_docs)]

mod clock;
mod export;
mod sink;
mod timeline;

pub use export::validate_chrome_json;
pub use sink::{SpanGuard, SpanSink};
pub use timeline::{EntryKind, PhaseRow, SlowRow, Timeline, TimelineEntry, TraceReport};

use std::sync::{Arc, Mutex};

/// Where span timestamps come from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockMode {
    /// Real host time (microseconds since the tracer was created), read through the
    /// crate's single allowlisted clock shim. Record *order* is still deterministic;
    /// only the `ts`/`dur` values vary run to run.
    Host,
    /// No clock reads at all: timestamps are synthesized at merge time from the
    /// deterministic record order, so the exported trace is byte-stable across runs.
    Logical,
}

/// Tracer configuration: enabled bit plus clock source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record spans at all? `false` makes [`Tracer::new`] return a disabled tracer.
    pub enabled: bool,
    /// Timestamp source for recorded spans.
    pub clock: ClockMode,
}

impl TraceConfig {
    /// Tracing on, real host timestamps — what `--trace` uses.
    pub fn enabled() -> Self {
        TraceConfig {
            enabled: true,
            clock: ClockMode::Host,
        }
    }

    /// Tracing on, synthesized timestamps — byte-stable exports for golden tests.
    pub fn logical() -> Self {
        TraceConfig {
            enabled: true,
            clock: ClockMode::Logical,
        }
    }

    /// Tracing off (the default): no buffers, no clock reads.
    pub fn disabled() -> Self {
        TraceConfig {
            enabled: false,
            clock: ClockMode::Host,
        }
    }
}

impl Default for TraceConfig {
    /// Disabled.
    fn default() -> Self {
        TraceConfig::disabled()
    }
}

/// Static callsite metadata for a span or event, created with [`span_meta!`].
///
/// The macro expands to a `&'static SpanMeta`, so recording a span copies one
/// pointer — no per-record string allocation.
#[derive(Debug)]
pub struct SpanMeta {
    /// Span name, e.g. `"gather"`.
    pub name: &'static str,
    /// The `module_path!()` of the callsite.
    pub target: &'static str,
    /// The `file!()` of the callsite.
    pub file: &'static str,
    /// The `line!()` of the callsite.
    pub line: u32,
}

/// Expands to a `&'static` [`SpanMeta`] capturing the callsite's module path, file
/// and line alongside the given span name.
#[macro_export]
macro_rules! span_meta {
    ($name:expr) => {{
        static META: $crate::SpanMeta = $crate::SpanMeta {
            name: $name,
            target: module_path!(),
            file: file!(),
            line: line!(),
        };
        &META
    }};
}

/// The deterministic position of a record in the merged timeline.
///
/// The timeline is ordered by `(seq, pid, tid, lane)` and then the per-sink record
/// ordinal — never by wall-clock. Instrumentation must give **distinct sinks
/// distinct keys** (at least a distinct lane) so the merged order is independent of
/// which OS thread ran which work unit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanKey {
    /// Major order: superstep number in the engine, query sequence id in serve.
    pub seq: u64,
    /// Process lane in the Chrome export: `0` = driver/serve, `m + 1` = machine `m`.
    pub pid: u32,
    /// Thread lane in the Chrome export: `0` = the phase's own lane, `b + 1` =
    /// key-range batch `b`.
    pub tid: u32,
    /// Tie-breaker distinguishing sinks that share `(seq, pid, tid)` — e.g. the
    /// engine phase index. Not exported; ordering only.
    pub lane: u16,
}

impl SpanKey {
    /// A key from its four components.
    pub fn new(seq: u64, pid: u32, tid: u32, lane: u16) -> Self {
        SpanKey {
            seq,
            pid,
            tid,
            lane,
        }
    }
}

/// One recorded span or instant event, before merging.
#[derive(Clone, Debug)]
pub(crate) struct Record {
    pub(crate) meta: &'static SpanMeta,
    pub(crate) key: SpanKey,
    pub(crate) ordinal: u32,
    pub(crate) start_us: u64,
    pub(crate) dur_us: u64,
    pub(crate) instant: bool,
    pub(crate) counters: Vec<(&'static str, u64)>,
}

pub(crate) struct Inner {
    clock: ClockMode,
    epoch: clock::Epoch,
    records: Mutex<Vec<Record>>,
}

impl Inner {
    pub(crate) fn clock(&self) -> ClockMode {
        self.clock
    }

    /// Microseconds since the tracer was created — only called in [`ClockMode::Host`].
    pub(crate) fn now_us(&self) -> u64 {
        self.epoch.micros()
    }

    pub(crate) fn absorb(&self, records: &mut Vec<Record>) {
        let mut shared = self
            .records
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        shared.append(records);
    }
}

/// The shared tracing handle: clone it into every layer that should record spans.
///
/// `Tracer::default()` is disabled — no buffer is allocated, [`Tracer::sink`] hands
/// out inert sinks, and no clock is ever read, so an untraced run pays only a few
/// `Option` checks.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => write!(f, "Tracer {{ enabled, clock: {:?} }}", inner.clock),
            None => write!(f, "Tracer {{ disabled }}"),
        }
    }
}

impl Tracer {
    /// A tracer for `config` — disabled (zero-cost) when `config.enabled` is false.
    pub fn new(config: TraceConfig) -> Self {
        if !config.enabled {
            return Tracer { inner: None };
        }
        Tracer {
            inner: Some(Arc::new(Inner {
                clock: config.clock,
                epoch: clock::Epoch::start(config.clock == ClockMode::Host),
                records: Mutex::new(Vec::new()),
            })),
        }
    }

    /// The zero-cost disabled tracer (same as `Tracer::default()`).
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// `true` when spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A fresh per-work-unit sink. Create one per worker closure / query; it flushes
    /// its records to the shared buffer when dropped. For a disabled tracer the sink
    /// is inert and allocation-free.
    pub fn sink(&self) -> SpanSink {
        SpanSink::new(self.inner.clone())
    }

    /// Drains everything recorded so far into a merged, deterministically ordered
    /// [`Timeline`]. Subsequent records start a fresh timeline.
    pub fn finish(&self) -> Timeline {
        match &self.inner {
            Some(inner) => {
                let records = {
                    let mut shared = inner
                        .records
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    std::mem::take(&mut *shared)
                };
                Timeline::merge(records, inner.clock)
            }
            None => Timeline::empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        {
            let sink = tracer.sink();
            let mut guard = sink.span(span_meta!("noop"), SpanKey::new(0, 0, 0, 0));
            guard.counter("ops", 7);
            sink.event(span_meta!("evt"), SpanKey::new(0, 0, 0, 0));
        }
        assert!(tracer.finish().entries().is_empty());
    }

    #[test]
    fn logical_clock_never_reads_time_and_is_deterministic() {
        let render = || {
            let tracer = Tracer::new(TraceConfig::logical());
            {
                let sink = tracer.sink();
                let mut a = sink.span(span_meta!("alpha"), SpanKey::new(1, 0, 0, 0));
                a.counter("n", 3);
                drop(a);
                let _b = sink.span(span_meta!("beta"), SpanKey::new(0, 0, 0, 0));
            }
            tracer.finish().to_chrome_json()
        };
        let one = render();
        let two = render();
        assert_eq!(one, two, "logical traces must be byte-stable");
        // seq=0 sorts before seq=1 regardless of recording order.
        let beta = one.find("beta").unwrap();
        let alpha = one.find("alpha").unwrap();
        assert!(beta < alpha);
    }

    #[test]
    fn merge_orders_by_key_not_by_flush_order() {
        let tracer = Tracer::new(TraceConfig::logical());
        {
            // Two sinks flushing in the "wrong" order still merge deterministically.
            let late = tracer.sink();
            let _s = late.span(span_meta!("late"), SpanKey::new(5, 2, 1, 0));
            drop(_s);
            drop(late);
            let early = tracer.sink();
            let _s = early.span(span_meta!("early"), SpanKey::new(5, 1, 1, 0));
        }
        let timeline = tracer.finish();
        let names: Vec<&str> = timeline.entries().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["early", "late"]);
    }

    #[test]
    fn finish_drains_the_buffer() {
        let tracer = Tracer::new(TraceConfig::logical());
        {
            let sink = tracer.sink();
            let _s = sink.span(span_meta!("only"), SpanKey::default());
        }
        assert_eq!(tracer.finish().entries().len(), 1);
        assert!(tracer.finish().entries().is_empty());
    }

    #[test]
    fn host_clock_records_monotonic_timestamps() {
        let tracer = Tracer::new(TraceConfig::enabled());
        {
            let sink = tracer.sink();
            let first = sink.span(span_meta!("first"), SpanKey::new(0, 0, 0, 0));
            drop(first);
            let _second = sink.span(span_meta!("second"), SpanKey::new(1, 0, 0, 0));
        }
        let timeline = tracer.finish();
        let entries = timeline.entries();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].start_us <= entries[1].start_us);
    }
}
