//! The merged trace: deterministic ordering, logical timestamp assignment, and the
//! [`TraceReport`] summary (phase breakdown + top-N slowest spans).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{ClockMode, Record, SpanKey};

/// Whether a timeline entry is a complete span or an instant event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryKind {
    /// A duration span (`ph: "X"` in the Chrome export).
    Span,
    /// A point-in-time event (`ph: "i"` in the Chrome export), e.g. a rejection.
    Instant,
}

/// One merged record of a [`Timeline`].
#[derive(Clone, Debug)]
pub struct TimelineEntry {
    /// Span name from the callsite's [`span_meta!`](crate::span_meta).
    pub name: &'static str,
    /// The callsite's `module_path!()`.
    pub target: &'static str,
    /// The callsite's `file!()`.
    pub file: &'static str,
    /// The callsite's `line!()`.
    pub line: u32,
    /// The deterministic timeline position the record was keyed with.
    pub key: SpanKey,
    /// The record's ordinal within its sink (breaks ties under equal keys).
    pub ordinal: u32,
    /// Start timestamp, microseconds (host time or logical index).
    pub start_us: u64,
    /// Duration, microseconds (`0` for instants; logical spans report `1`).
    pub dur_us: u64,
    /// Span or instant event.
    pub kind: EntryKind,
    /// Named work counters attached to the record.
    pub counters: Vec<(&'static str, u64)>,
}

impl TimelineEntry {
    /// `true` for instant events.
    pub fn is_instant(&self) -> bool {
        self.kind == EntryKind::Instant
    }
}

/// The merged, deterministically ordered trace from [`Tracer::finish`](crate::Tracer::finish).
///
/// Entries are ordered by `(key, ordinal)` — a stable total order independent of
/// which OS thread recorded what when — so two same-seed runs produce entries in
/// the same order (and byte-identical exports under [`ClockMode::Logical`]).
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    entries: Vec<TimelineEntry>,
}

impl Timeline {
    pub(crate) fn empty() -> Self {
        Timeline {
            entries: Vec::new(),
        }
    }

    pub(crate) fn merge(mut records: Vec<Record>, clock: ClockMode) -> Self {
        // The deterministic total order: key, then per-sink ordinal, then callsite.
        // Wall-clock never participates. Callsite fields make the order total even
        // if two sinks (against the instrumentation contract) share a key+ordinal.
        records.sort_by(|a, b| {
            (a.key, a.ordinal, a.meta.name, a.meta.target, a.meta.line).cmp(&(
                b.key,
                b.ordinal,
                b.meta.name,
                b.meta.target,
                b.meta.line,
            ))
        });
        let entries = records
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let (start_us, dur_us) = match clock {
                    ClockMode::Host => (r.start_us, r.dur_us),
                    // Logical time: synthesized from the merged order so exports
                    // are byte-stable. Spans get unit width, instants zero.
                    ClockMode::Logical => (i as u64 * 2, u64::from(!r.instant)),
                };
                TimelineEntry {
                    name: r.meta.name,
                    target: r.meta.target,
                    file: r.meta.file,
                    line: r.meta.line,
                    key: r.key,
                    ordinal: r.ordinal,
                    start_us,
                    dur_us,
                    kind: if r.instant {
                        EntryKind::Instant
                    } else {
                        EntryKind::Span
                    },
                    counters: r.counters,
                }
            })
            .collect();
        Timeline { entries }
    }

    /// The merged entries, in deterministic timeline order.
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Summarizes the timeline: per-phase breakdown plus the `top_n` slowest spans.
    pub fn report(&self, top_n: usize) -> TraceReport {
        let mut phases: BTreeMap<&'static str, PhaseRow> = BTreeMap::new();
        for entry in &self.entries {
            if entry.is_instant() {
                continue;
            }
            let row = phases.entry(entry.name).or_insert(PhaseRow {
                name: entry.name,
                count: 0,
                total_us: 0,
                max_us: 0,
            });
            row.count = row.count.saturating_add(1);
            row.total_us = row.total_us.saturating_add(entry.dur_us);
            row.max_us = row.max_us.max(entry.dur_us);
        }
        let mut spans: Vec<&TimelineEntry> =
            self.entries.iter().filter(|e| !e.is_instant()).collect();
        // Slowest first; ties broken by the deterministic timeline position.
        spans.sort_by(|a, b| {
            b.dur_us
                .cmp(&a.dur_us)
                .then((a.key, a.ordinal).cmp(&(b.key, b.ordinal)))
        });
        let slowest = spans
            .into_iter()
            .take(top_n)
            .map(|e| SlowRow {
                name: e.name,
                key: e.key,
                dur_us: e.dur_us,
            })
            .collect();
        TraceReport {
            events: self.entries.len(),
            phases: phases.into_values().collect(),
            slowest,
        }
    }
}

/// Aggregate time spent under one span name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseRow {
    /// The span name ("gather", "service", …).
    pub name: &'static str,
    /// Spans recorded under this name.
    pub count: u64,
    /// Summed duration, microseconds.
    pub total_us: u64,
    /// Longest single span, microseconds.
    pub max_us: u64,
}

impl PhaseRow {
    /// Mean span duration, microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.count > 0 {
            self.total_us as f64 / self.count as f64
        } else {
            0.0
        }
    }
}

/// One of the top-N slowest spans in a [`TraceReport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlowRow {
    /// The span name.
    pub name: &'static str,
    /// Its deterministic timeline position.
    pub key: SpanKey,
    /// Its duration, microseconds.
    pub dur_us: u64,
}

/// A human-readable trace summary: phase breakdown table + top-N slowest spans.
#[derive(Clone, Debug, Default)]
pub struct TraceReport {
    /// Total merged records (spans + instants).
    pub events: usize,
    /// Per-span-name aggregates, ordered by name.
    pub phases: Vec<PhaseRow>,
    /// The slowest individual spans, slowest first.
    pub slowest: Vec<SlowRow>,
}

impl std::fmt::Display for TraceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "trace: {} events", self.events)?;
        writeln!(
            f,
            "{:<18} {:>8} {:>12} {:>12} {:>12}",
            "phase", "count", "total_us", "mean_us", "max_us"
        )?;
        for row in &self.phases {
            writeln!(
                f,
                "{:<18} {:>8} {:>12} {:>12.1} {:>12}",
                row.name,
                row.count,
                row.total_us,
                row.mean_us(),
                row.max_us
            )?;
        }
        if !self.slowest.is_empty() {
            writeln!(f, "slowest spans:")?;
            for row in &self.slowest {
                let mut at = String::new();
                let _ = write!(
                    at,
                    "seq={} pid={} tid={} lane={}",
                    row.key.seq, row.key.pid, row.key.tid, row.key.lane
                );
                writeln!(f, "  {:<18} {:>12}us  ({at})", row.name, row.dur_us)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{span_meta, SpanKey, TraceConfig, Tracer};

    fn sample() -> crate::Timeline {
        let tracer = Tracer::new(TraceConfig::logical());
        {
            let sink = tracer.sink();
            for step in 0..3u64 {
                let mut span = sink.span(span_meta!("gather"), SpanKey::new(step, 1, 0, 0));
                span.counter("edges", 10 * (step + 1));
                drop(span);
                let _apply = sink.span(span_meta!("apply"), SpanKey::new(step, 1, 0, 1));
            }
            sink.event(span_meta!("rejected"), SpanKey::new(1, 0, 0, 9));
        }
        tracer.finish()
    }

    #[test]
    fn report_aggregates_by_phase() {
        let report = sample().report(2);
        assert_eq!(report.events, 7);
        let names: Vec<&str> = report.phases.iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["apply", "gather"]);
        assert!(report.phases.iter().all(|p| p.count == 3));
        assert_eq!(report.slowest.len(), 2);
        let rendered = report.to_string();
        assert!(rendered.contains("gather"));
        assert!(rendered.contains("slowest spans"));
    }

    #[test]
    fn logical_timestamps_follow_merge_order() {
        let timeline = sample();
        let mut last = None;
        for entry in timeline.entries() {
            if let Some(prev) = last {
                assert!(entry.start_us > prev);
            }
            last = Some(entry.start_us);
        }
    }
}
