//! The workspace's **single** allowlisted wall-clock shim.
//!
//! Every host-time read the tracing subsystem performs goes through [`Epoch`]; no
//! other library module in the workspace may touch `std::time::Instant` (the
//! `frogwild-lint` `timing` rule enforces this, with exactly this file and the
//! serving latency module on its allowlist). Keeping the reads in one place is what
//! lets [`ClockMode::Logical`](crate::ClockMode) guarantee *zero* clock reads: a
//! logical epoch is created unarmed and never samples the clock.

use std::time::Instant;

/// The tracer's time origin. Armed epochs (host clock) sample `Instant` once at
/// creation and report microseconds since then; unarmed epochs (logical clock,
/// disabled tracer) never read the clock at all.
pub(crate) struct Epoch {
    origin: Option<Instant>,
}

impl Epoch {
    /// A new epoch; samples the host clock only when `armed`.
    pub(crate) fn start(armed: bool) -> Self {
        Epoch {
            origin: if armed { Some(Instant::now()) } else { None },
        }
    }

    /// Microseconds elapsed since the epoch was created (`0` for unarmed epochs).
    pub(crate) fn micros(&self) -> u64 {
        match self.origin {
            Some(origin) => origin.elapsed().as_micros() as u64,
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_epoch_reports_zero() {
        let epoch = Epoch::start(false);
        assert_eq!(epoch.micros(), 0);
    }

    #[test]
    fn armed_epoch_is_monotonic() {
        let epoch = Epoch::start(true);
        let a = epoch.micros();
        let b = epoch.micros();
        assert!(b >= a);
    }
}
