//! `frogwild` — command-line front end for the FrogWild reproduction.
//!
//! The engine-backed subcommands (`topk`, `pagerank`, `autotune`) build a [`Session`] —
//! the graph is partitioned across the simulated cluster exactly once — and serve their
//! queries through the typed `Query` → `Response` surface; `ppr` is serial and is
//! served directly from the raw graph (no partitioning) unless the `--walk-index-*`
//! options ask for an index-serving session. `index` builds a walk index standalone
//! and reports its economics. Errors are `frogwild::Error` values printed to stderr;
//! nothing panics on a bad configuration.
//!
//! ```text
//! USAGE:
//!     frogwild <COMMAND> [OPTIONS]
//!
//! COMMANDS:
//!     topk       estimate the top-k PageRank vertices of a graph with FrogWild
//!     autotune   self-tuning top-k: pilot run → walker plan → full run
//!     pagerank   run the GraphLab-style PageRank baseline on the simulated cluster
//!     ppr        personalized PageRank from a source vertex (push / exact / mc)
//!     serve      run a mixed query stream through the concurrent serving front-end
//!     index      build a walk index and report its economics (optionally probe it)
//!     plan       walker-budget planning for a target top-k accuracy
//!     stats      print basic structural statistics of an edge-list graph
//!     generate   write a synthetic Twitter-/LiveJournal-shaped graph as an edge list
//!
//! COMMON OPTIONS (session setup):
//!     --graph <path>        SNAP-style edge list (whitespace separated, # comments)
//!     --synthetic <kind>    use a generated graph instead: twitter | livejournal
//!     --vertices <n>        size of the synthetic graph             [default: 100000]
//!     --machines <n>        simulated cluster size                  [default: 16]
//!     --partitioner <p>     random|grid|oblivious|hdrf|hybrid       [default: oblivious]
//!     --seed <n>            random seed                             [default: 42]
//!     --verbose             print the per-query cost audit (QueryCost) to stderr
//!
//! EXECUTION OPTIONS (engine-served queries: topk, pagerank, autotune, serve):
//!     --workers <n>         engine worker threads per query (0 = auto)   [default: 0]
//!     --staleness <s>       bounded-staleness window, in supersteps      [default: 0]
//!
//!   The two worker pools compose and are deliberately distinct flags: `--workers`
//!   sizes the engine's batch pool *inside* one query (results are bit-identical for
//!   every setting), while `--serve-workers` (below) sizes the serving front-end's
//!   query pool across concurrent queries. `--staleness 0` is the synchronous
//!   barriered executor; `s > 0` lets each machine run up to `s` supersteps ahead of
//!   its peers' messages under a deterministic delivery schedule — results stay
//!   reproducible for a fixed `s` but differ from the synchronous ones. Serial and
//!   index-served paths (`ppr`, `--walk-index` topk) ignore both engine options and
//!   say so.
//!
//! SERVING OPTIONS (serve subcommand; also honoured by topk --repeat sessions):
//!     --serve-workers <n>   worker threads in the serving pool (0 = auto) [default: 0]
//!     --queue-depth <n>     bounded submission queue capacity, in batches [default: 64]
//!     --serve-batch <n>     queries per submitted batch                   [default: 4]
//!     --admission <p>       block | reject | timeout                      [default: block]
//!     --admission-timeout-ms <n>  wait bound for --admission timeout      [default: 100]
//!     --queries <n>         queries in the generated mixed stream (serve) [default: 100]
//!     --serial              serve on the calling thread (reference path)
//!
//! TRACING OPTIONS (topk, pagerank, autotune, ppr, serve, index):
//!     --trace <path>        export the run's structured trace to <path>
//!     --trace-format <f>    chrome | csv                             [default: chrome]
//!     --trace-logical       logical clock: byte-stable traces, diffable across runs
//!                           (ordinal timestamps instead of wall-clock durations)
//!
//!   Tracing observes, never steers: responses are bit-identical with tracing on or
//!   off. The chrome format loads in `chrome://tracing` / `ui.perfetto.dev` and is
//!   validated before the file is written; either format also prints the
//!   phase-breakdown summary (`TraceReport`) to stderr.
//!
//! WALK-INDEX OPTIONS (enable with --walk-index on topk/ppr; implicit for index):
//!     --walk-index                     precompute a walk index at session build
//!     --walk-index-segments <n>       segments per vertex (R)        [default: 16]
//!     --walk-index-length <n>         hops per segment (L)           [default: 8]
//!     --walk-index-epsilon <e>        serve-time push frontier       [default: 1e-4]
//!     --walk-index-walks <n>          stitched walks per unit residual [default: 3000]
//!     --walk-index-budget-mb <n>      arena memory budget in MiB     [default: unbounded]
//!
//! TOPK OPTIONS:
//!     --k <n>              how many vertices to report              [default: 100]
//!     --walkers <n>        number of random walkers                 [default: 800000]
//!     --iterations <n>     engine supersteps                        [default: 4]
//!     --ps <p>             mirror synchronization probability       [default: 0.7]
//!     --repeat <n>         serve the query n times on one session   [default: 1]
//!     --parallel           serve engine work batches from a worker pool
//!                          (sized by --workers, see EXECUTION OPTIONS)
//!     --tolerance <t>      delta gate: a vertex whose live-walker count after apply
//!                          is <= t skips scatter and leaves the frontier [default: 0]
//!
//! PAGERANK OPTIONS:
//!     --iterations <n>     number of iterations                     [default: 2]
//!     --exact              run to convergence instead
//!     --tolerance <t>      delta gate: a vertex whose rank changed by <= t skips
//!                          scatter (overrides the preset's tolerance)
//!
//! PPR OPTIONS:
//!     --source <v>         source vertex id (required)
//!     --method <m>         push | exact | mc                        [default: push]
//!     --epsilon <e>        forward-push threshold                   [default: 1e-7]
//!     --walkers <n>        mc walk count                            [default: 100000]
//!     --max-steps <n>      mc walk-length truncation                [default: 64]
//!     --k <n>              how many vertices to report              [default: 20]
//!
//! INDEX OPTIONS (plus the walk-index options above):
//!     --probe <n>          serve n random PPR queries from the index [default: 0]
//!
//! PLAN OPTIONS:
//!     --k <n>              target top-k size                        [default: 100]
//!     --vertices <n>       graph size the query will run on         [default: 100000]
//!     --mass <m>           expected true top-k mass                 [default: 0.1]
//!     --loss <e>           tolerated captured-mass loss             [default: 0.02]
//!     --delta <d>          tolerated failure probability            [default: 0.1]
//!
//! GENERATE OPTIONS:
//!     --kind <k>           twitter | livejournal                    [default: twitter]
//!     --out <path>         output edge-list path (required)
//! ```

mod args;

use args::Args;
use frogwild::obs::{span_meta, SpanKey};
use frogwild::prelude::*;
use frogwild_graph::io::{read_edge_list_file, write_edge_list_file, EdgeListOptions};
use frogwild_graph::stats::{degree_summary, in_degree_tail_exponent, Direction};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "-h" || raw[0] == "help" {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let args = match Args::parse(&raw) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "topk" => cmd_topk(&args),
        "autotune" => cmd_autotune(&args),
        "pagerank" => cmd_pagerank(&args),
        "ppr" => cmd_ppr(&args),
        "serve" => cmd_serve(&args),
        "index" => cmd_index(&args),
        "plan" => cmd_plan(&args),
        "stats" => cmd_stats(&args),
        "generate" => cmd_generate(&args),
        other => Err(Error::query(format!("unknown command {other:?}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "frogwild — fast top-k PageRank approximation (FrogWild, VLDB 2015 reproduction)\n\n\
         usage: frogwild <topk|autotune|pagerank|ppr|serve|index|plan|stats|generate> [options]\n\
         \n\
         Ranking commands build one Session (the graph is partitioned once) and serve\n\
         typed queries against it; repeated queries amortize the partitioning cost.\n\
         With --walk-index the session also precomputes per-vertex walk segments and\n\
         serves topk/ppr by stitching them instead of fresh Monte-Carlo walks.\n\
         \n\
         session:  --graph <edge list> | --synthetic twitter|livejournal [--vertices N]\n\
         \u{20}          --machines N --partitioner random|grid|oblivious|hdrf|hybrid --seed N\n\
         \u{20}          [--walk-index] [--walk-index-segments R] [--walk-index-length L]\n\
         \u{20}          [--walk-index-epsilon E] [--walk-index-walks N] [--walk-index-budget-mb M]\n\
         \u{20}          [--workers N] [--staleness S]  (engine execution; see --help)\n\
         \u{20}          [--trace <path>] [--trace-format chrome|csv] [--trace-logical]\n\
         topk:     --k N --walkers N --iterations N --ps P [--repeat N] [--parallel]\n\
         \u{20}          [--tolerance T]\n\
         autotune: --k N --loss E --delta D --ps P [--pilot-walkers N]\n\
         pagerank: --iterations N | --exact [--tolerance T]\n\
         ppr:      --source V [--method push|exact|mc] [--epsilon E] [--k N]\n\
         serve:    --queries N --serve-workers N --queue-depth N --serve-batch N\n\
         \u{20}          [--admission block|reject|timeout] [--admission-timeout-ms N] [--serial]\n\
         index:    [--probe N] (walk-index options above; builds and reports the index)\n\
         plan:     --k N --vertices N --mass M --loss E --delta D\n\
         generate: --kind twitter|livejournal --vertices N --out <path>\n\
         \n\
         run `cargo doc --open -p frogwild` for the library documentation."
    );
}

/// Loads the graph named by `--graph`, or generates one per `--synthetic`.
fn load_graph(args: &Args) -> Result<DiGraph> {
    let seed: u64 = args.get_parsed("seed", 42, "an integer")?;
    if let Some(path) = args.get("graph") {
        let (graph, _) = read_edge_list_file(path, &EdgeListOptions::default())
            .map_err(|e| Error::graph(format!("could not load {path}: {e}")))?;
        eprintln!(
            "loaded {path}: {} vertices, {} edges",
            graph.num_vertices(),
            graph.num_edges()
        );
        return Ok(graph);
    }
    let vertices: usize = args.get_parsed("vertices", 100_000, "an integer")?;
    let kind = args.get("synthetic").unwrap_or("twitter");
    let mut rng = SmallRng::seed_from_u64(seed);
    let graph = match kind {
        "twitter" => frogwild_graph::generators::twitter_like(vertices, &mut rng),
        "livejournal" => frogwild_graph::generators::livejournal_like(vertices, &mut rng),
        other => {
            return Err(Error::config(
                "command line",
                format!("unknown synthetic graph kind {other:?}"),
            ))
        }
    };
    eprintln!(
        "generated {kind}-shaped graph: {} vertices, {} edges (seed {seed})",
        graph.num_vertices(),
        graph.num_edges()
    );
    Ok(graph)
}

/// The `--walk-index-*` options parsed into a config (defaults where absent).
fn walk_index_values(args: &Args) -> Result<WalkIndexConfig> {
    let base = WalkIndexConfig::default();
    // An explicit `--walk-index-budget-mb 0` must reach the library validator (which
    // rejects a zero budget) instead of silently meaning "unbounded"; only an absent
    // option keeps the default.
    let memory_budget_bytes = match args.get("walk-index-budget-mb") {
        None => base.memory_budget_bytes,
        Some(_) => args.get_parsed::<usize>("walk-index-budget-mb", 0, "an integer")? * 1024 * 1024,
    };
    Ok(WalkIndexConfig {
        segments_per_vertex: args.get_parsed(
            "walk-index-segments",
            base.segments_per_vertex,
            "an integer",
        )?,
        segment_length: args.get_parsed("walk-index-length", base.segment_length, "an integer")?,
        frontier_epsilon: args.get_parsed(
            "walk-index-epsilon",
            base.frontier_epsilon,
            "a positive number",
        )?,
        walks_per_unit_residual: args.get_parsed(
            "walk-index-walks",
            base.walks_per_unit_residual,
            "an integer",
        )?,
        memory_budget_bytes,
        seed: args.get_parsed("seed", 42, "an integer")?,
        parallel: args.has_flag("parallel"),
        ..base
    })
}

/// `Some(config)` when the command line opts into a walk index — via the bare
/// `--walk-index` switch or any `--walk-index-*` value.
fn walk_index_config(args: &Args) -> Result<Option<WalkIndexConfig>> {
    let wants = args.has_flag("walk-index")
        || [
            "walk-index-segments",
            "walk-index-length",
            "walk-index-epsilon",
            "walk-index-walks",
            "walk-index-budget-mb",
        ]
        .iter()
        .any(|name| args.get(name).is_some());
    if !wants {
        return Ok(None);
    }
    walk_index_values(args).map(Some)
}

/// The `--serve-*` / `--admission*` options parsed into a [`ServeConfig`].
fn serve_config_from(args: &Args) -> Result<ServeConfig> {
    let base = ServeConfig::default();
    let admission = match args.get("admission").unwrap_or("block") {
        "block" => Admission::Block,
        "reject" => Admission::Reject,
        "timeout" => {
            let ms: u64 = args.get_parsed("admission-timeout-ms", 100, "milliseconds")?;
            Admission::Timeout(std::time::Duration::from_millis(ms))
        }
        other => {
            return Err(Error::config(
                "command line",
                format!("unknown admission policy {other:?} (expected block, reject or timeout)"),
            ))
        }
    };
    Ok(ServeConfig {
        workers: args.get_parsed("serve-workers", base.workers, "an integer")?,
        queue_depth: args.get_parsed("queue-depth", base.queue_depth, "an integer")?,
        batch: args.get_parsed("serve-batch", base.batch, "an integer")?,
        admission,
    })
}

/// [`SpanKey::lane`] of CLI-level spans (the sessionless `ppr` command span and the
/// `index` command's probe spans). Engine spans use lanes 0–6 and the serving stack
/// lanes 8–10, so CLI spans never share a `(key)` with a library sink.
const LANE_CLI: u16 = 11;

/// How a `--trace` export is serialized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TraceFormat {
    /// Chrome trace-event JSON — loads in `chrome://tracing` / `ui.perfetto.dev`.
    Chrome,
    /// Flat CSV, one row per timeline record.
    Csv,
}

/// What `--trace <path>` asked for: where to write, in which format, on which clock.
struct TraceRequest {
    path: String,
    format: TraceFormat,
    config: TraceConfig,
}

/// The `--trace` / `--trace-format` / `--trace-logical` options, `Some` only when a
/// trace was actually requested. Pure (no side effects), so both the session builder
/// and the post-command exporter can call it.
fn trace_request(args: &Args) -> Result<Option<TraceRequest>> {
    let Some(path) = args.get("trace") else {
        return Ok(None);
    };
    let format = match args.get("trace-format").unwrap_or("chrome") {
        "chrome" => TraceFormat::Chrome,
        "csv" => TraceFormat::Csv,
        other => {
            return Err(Error::config(
                "command line",
                format!("unknown trace format {other:?} (expected chrome or csv)"),
            ))
        }
    };
    let config = if args.has_flag("trace-logical") {
        TraceConfig::logical()
    } else {
        TraceConfig::enabled()
    };
    Ok(Some(TraceRequest {
        path: path.to_string(),
        format,
        config,
    }))
}

/// Merges `tracer`'s records into the deterministic timeline, writes the requested
/// export, and prints the phase-breakdown summary to stderr. Chrome output is run
/// back through the in-repo validator *before* the file is written, so the
/// `trace: wrote ...` confirmation line guarantees a loadable trace.
fn write_trace(tracer: &Tracer, request: &TraceRequest) -> Result<()> {
    let timeline = tracer.finish();
    let (data, label, records) = match request.format {
        TraceFormat::Chrome => {
            let json = timeline.to_chrome_json();
            let events = frogwild::obs::validate_chrome_json(&json).map_err(|e| {
                Error::query(format!("emitted chrome trace failed validation: {e}"))
            })?;
            (json, "chrome, validated", events)
        }
        TraceFormat::Csv => (timeline.to_csv(), "csv", timeline.entries().len()),
    };
    std::fs::write(&request.path, &data)
        .map_err(|e| Error::graph(format!("could not write {}: {e}", request.path)))?;
    eprintln!("{}", timeline.report(5));
    eprintln!(
        "trace: wrote {records} records to {} ({label})",
        request.path
    );
    Ok(())
}

/// Builds the session shared by all ranking subcommands. `allow_index` is set by the
/// subcommands whose queries can actually be served from a walk index (topk, ppr);
/// the engine-only subcommands skip the build and say so, instead of silently paying
/// for an index their queries always bypass.
fn session_over<'g>(args: &Args, graph: &'g DiGraph, allow_index: bool) -> Result<Session<'g>> {
    let machines: usize = args.get_parsed("machines", 16, "an integer")?;
    let seed: u64 = args.get_parsed("seed", 42, "an integer")?;
    let partitioner: PartitionerKind = args.get_parsed(
        "partitioner",
        PartitionerKind::default(),
        "a partitioner name",
    )?;
    let workers: usize = args.get_parsed("workers", 0usize, "an integer")?;
    let staleness: usize = args.get_parsed("staleness", 0usize, "an integer")?;
    let mut builder = Session::builder(graph)
        .machines(machines)
        .partitioner(partitioner)
        .seed(seed)
        .execution(ExecutionConfig::new().workers(workers).staleness(staleness))
        .serve_config(serve_config_from(args)?);
    if let Some(request) = trace_request(args)? {
        builder = builder.tracing(request.config);
    }
    if let Some(config) = walk_index_config(args)? {
        if allow_index {
            builder = builder.walk_index(config);
        } else {
            eprintln!("note: --walk-index is ignored here (this query always runs on the engine)");
        }
    }
    let session = builder.build()?;
    eprintln!(
        "session: {} machines, {} partitioner, replication factor {:.2}, partitioned in {:.3}s",
        session.num_machines(),
        session.partitioner_name(),
        session.replication_factor(),
        session.stats().partition_seconds,
    );
    if let Some(report) = session.walk_index_report() {
        eprintln!(
            "walk index: {}x{}-hop segments/vertex, {} bytes, built in {:.3}s on {} machines",
            report.effective_segments,
            report.segment_length,
            report.arena_bytes,
            report.build_seconds,
            report.machines,
        );
    }
    Ok(session)
}

fn print_response_header(session: &Session<'_>, response: &Response) {
    println!("# algorithm: {}", response.algorithm);
    println!(
        "# machines: {}, supersteps: {}, network bytes: {}, simulated time: {:.4}s, repartitioned: {}",
        session.num_machines(),
        response.cost.supersteps,
        response.cost.network_bytes,
        response.cost.simulated_seconds,
        response.cost.repartitioned,
    );
}

/// Under `--verbose`, prints the per-query cost audit (`QueryCost`'s `Display`)
/// to stderr so the stdout CSV stays machine-readable.
fn print_verbose_cost(args: &Args, response: &Response) {
    if args.has_flag("verbose") {
        eprintln!("{}", response.cost);
    }
}

fn print_ranking(response: &Response, score_label: &str) {
    println!("rank,vertex,{score_label}");
    for (rank, (v, score)) in response.ranking.iter().enumerate() {
        println!("{},{},{:.8}", rank + 1, v, score);
    }
}

fn print_session_stats(session: &Session<'_>) {
    // SessionStats implements Display with the full amortized-economics audit,
    // including the executor's frontier counters.
    eprintln!("{}", session.stats());
}

fn cmd_topk(args: &Args) -> Result<()> {
    let config = FrogWildConfig {
        num_walkers: args.get_parsed("walkers", 800_000u64, "an integer")?,
        iterations: args.get_parsed("iterations", 4usize, "an integer")?,
        sync_probability: args.get_parsed("ps", 0.7f64, "a probability in (0, 1]")?,
        seed: args.get_parsed("seed", 42, "an integer")?,
        parallel: args.has_flag("parallel"),
        tolerance: args.get_parsed("tolerance", 0.0f64, "a non-negative number")?,
        ..FrogWildConfig::default()
    };
    // Fail fast on a bad configuration before the (expensive) graph load + partition.
    config.validate()?;
    if config.tolerance > 0.0 && walk_index_config(args)?.is_some() {
        eprintln!(
            "warning: --tolerance gates the engine's scatter phase, but --walk-index serves \
             topk from precomputed segments; the tolerance has no effect on index-served queries"
        );
    }
    if walk_index_config(args)?.is_some() {
        for flag in ["workers", "staleness"] {
            if args.get(flag).is_some() {
                eprintln!(
                    "warning: --{flag} configures the engine executor, but --walk-index serves \
                     topk from precomputed segments; it has no effect on index-served queries"
                );
            }
        }
    }
    let k: usize = args.get_parsed("k", 100, "an integer")?;
    let repeat: usize = args.get_parsed("repeat", 1usize, "an integer")?;
    if repeat == 0 {
        return Err(Error::config("command line", "--repeat must be at least 1"));
    }

    let graph = load_graph(args)?;
    let mut session = session_over(args, &graph, true)?;
    let mut last = None;
    for _ in 0..repeat {
        last = Some(session.query(&Query::TopK { k, config })?);
    }
    let response = last.expect("repeat >= 1");
    print_response_header(&session, &response);
    print_verbose_cost(args, &response);
    print_ranking(&response, "estimated_mass");
    print_session_stats(&session);
    if let Some(request) = trace_request(args)? {
        write_trace(session.tracer(), &request)?;
    }
    Ok(())
}

fn cmd_pagerank(args: &Args) -> Result<()> {
    let graph = load_graph(args)?;
    let mut session = session_over(args, &graph, false)?;
    let mut config = if args.has_flag("exact") {
        PageRankConfig::exact()
    } else {
        PageRankConfig::truncated(args.get_parsed("iterations", 2usize, "an integer")?)
    };
    if args.get("tolerance").is_some() {
        config.tolerance =
            args.get_parsed("tolerance", config.tolerance, "a non-negative number")?;
        config.validate()?;
    }
    let k: usize = args.get_parsed("k", 100, "an integer")?;

    let response = session.query(&Query::Pagerank { k, config })?;
    print_response_header(&session, &response);
    print_verbose_cost(args, &response);
    print_ranking(&response, "score");
    print_session_stats(&session);
    if let Some(request) = trace_request(args)? {
        write_trace(session.tracer(), &request)?;
    }
    Ok(())
}

fn cmd_autotune(args: &Args) -> Result<()> {
    let k: usize = args.get_parsed("k", 100, "an integer")?;
    let config = AutoTuneConfig {
        k,
        mass_loss_target: args.get_parsed("loss", 0.05, "a positive number")?,
        failure_probability: args.get_parsed("delta", 0.1, "a probability")?,
        sync_probability: args.get_parsed("ps", 0.7, "a probability in (0, 1]")?,
        pilot_walkers: args.get_parsed("pilot-walkers", 10_000u64, "an integer")?,
        seed: args.get_parsed("seed", 42, "an integer")?,
        ..AutoTuneConfig::default()
    };
    // Fail fast on a bad configuration before the (expensive) graph load + partition.
    config.validate()?;

    let graph = load_graph(args)?;
    let mut session = session_over(args, &graph, false)?;
    let response = session.query(&Query::AutotunedTopK { config })?;
    if let ResponseDetail::AutotunedTopK {
        estimated_topk_mass,
        planned_walkers,
        planned_iterations,
        pilot_network_bytes,
    } = response.detail
    {
        println!(
            "# plan: estimated top-{k} mass {estimated_topk_mass:.4}, planned {planned_walkers} walkers / {planned_iterations} iterations (pilot cost {pilot_network_bytes} bytes)"
        );
    }
    print_response_header(&session, &response);
    print_verbose_cost(args, &response);
    print_ranking(&response, "estimated_mass");
    print_session_stats(&session);
    if let Some(request) = trace_request(args)? {
        write_trace(session.tracer(), &request)?;
    }
    Ok(())
}

fn cmd_ppr(args: &Args) -> Result<()> {
    let source: u64 = args.get_parsed("source", u64::MAX, "a vertex id")?;
    if source == u64::MAX {
        return Err(Error::config(
            "command line",
            "--source is required for the ppr command",
        ));
    }
    let k: usize = args.get_parsed("k", 20, "an integer")?;
    let method = match args.get("method").unwrap_or("push") {
        "push" => PprMethod::ForwardPush {
            epsilon: args.get_parsed("epsilon", 1e-7, "a positive number")?,
        },
        "exact" => PprMethod::PowerIteration {
            max_iterations: 200,
            tolerance: 1e-10,
        },
        "mc" => PprMethod::MonteCarlo {
            walkers: args.get_parsed("walkers", 100_000u64, "an integer")?,
            max_steps: args.get_parsed("max-steps", 64usize, "an integer")?,
            seed: args.get_parsed("seed", 42, "an integer")?,
        },
        other => {
            return Err(Error::config(
                "command line",
                format!("unknown ppr method {other:?} (expected push, exact or mc)"),
            ))
        }
    };

    if args.get("tolerance").is_some() {
        eprintln!(
            "warning: --tolerance gates the engine's scatter phase; ppr is served serially \
             or from the walk index and ignores it"
        );
    }
    for flag in ["workers", "staleness"] {
        if args.get(flag).is_some() {
            eprintln!(
                "warning: --{flag} configures the engine executor; ppr is served serially \
                 or from the walk index and ignores it"
            );
        }
    }

    let graph = load_graph(args)?;
    // Range-check on the raw u64 before narrowing: `--source` values past u32::MAX
    // must not silently wrap onto a valid vertex id.
    if source >= graph.num_vertices() as u64 {
        return Err(Error::query(format!(
            "--source {source} is out of range for a graph with {} vertices",
            graph.num_vertices()
        )));
    }

    // Without an index, PPR runs serially on the raw graph and never touches a
    // partitioned layout, so a one-shot CLI query skips the session (and its O(|E|)
    // partitioning) entirely. With `--walk-index-*` options a session is built so the
    // query is served by stitching precomputed segments — except for the exact method,
    // which always bypasses the index and must not pay for building one.
    let wants_index =
        walk_index_config(args)?.is_some() && !matches!(method, PprMethod::PowerIteration { .. });
    let trace = trace_request(args)?;
    let response = if wants_index {
        let mut session = session_over(args, &graph, true)?;
        let response = session.query(&Query::Ppr {
            source: source as VertexId,
            k,
            teleport_probability: 0.15,
            method,
        })?;
        print_session_stats(&session);
        if let Some(request) = &trace {
            write_trace(session.tracer(), request)?;
        }
        response
    } else {
        // The sessionless path has no library instrumentation to piggyback on, so the
        // CLI wraps the whole serve in one span of its own; the tracer stays disabled
        // (and the span free) unless --trace asked for it.
        let tracer = Tracer::new(
            trace
                .as_ref()
                .map_or_else(TraceConfig::disabled, |r| r.config),
        );
        let sink = tracer.sink();
        let mut span = sink.span(span_meta!("serve_ppr"), SpanKey::new(0, 0, 0, LANE_CLI));
        let response = frogwild::session::serve_ppr(&graph, source as VertexId, k, 0.15, method)?;
        if let ResponseDetail::Ppr { pushes, .. } = &response.detail {
            span.counter("pushes", *pushes as u64);
        }
        span.counter("walk_hops", response.cost.walk_hops);
        drop(span);
        drop(sink);
        if let Some(request) = &trace {
            write_trace(&tracer, request)?;
        }
        response
    };
    if let ResponseDetail::Ppr {
        pushes,
        iterations,
        residual,
    } = response.detail
    {
        eprintln!("ppr: {pushes} pushes, {iterations} power iterations, residual {residual:.3e}");
    }
    if response.cost.index_served {
        eprintln!(
            "walk index served it: {} hops covered via {} cached segments, only {} hops sampled fresh on segment exhaustion",
            response.cost.walk_hops,
            response.cost.index_hits,
            response.cost.index_misses,
        );
    }
    println!("# {}", response.algorithm);
    print_verbose_cost(args, &response);
    print_ranking(&response, "ppr");
    Ok(())
}

/// Generates a deterministic mixed TopK/PPR stream sized by `--queries`, shaped to
/// exercise both the engine path and (when `--walk-index` is set) the index path.
fn serve_stream(args: &Args, graph: &DiGraph) -> Result<Vec<Query>> {
    let count: usize = args.get_parsed("queries", 100usize, "an integer")?;
    if count == 0 {
        return Err(Error::config(
            "command line",
            "--queries must be at least 1",
        ));
    }
    let k: usize = args.get_parsed("k", 20, "an integer")?;
    let topk_config = FrogWildConfig {
        num_walkers: args.get_parsed("walkers", 20_000u64, "an integer")?,
        iterations: args.get_parsed("iterations", 3usize, "an integer")?,
        sync_probability: args.get_parsed("ps", 0.7f64, "a probability in (0, 1]")?,
        ..FrogWildConfig::default()
    };
    topk_config.validate()?;
    let vertices = graph.num_vertices() as u64;
    // 1-in-4 global top-k, the rest PPR from a rotating source — roughly the mix a
    // front-end sees (a few dashboards, many per-user queries). The per-query seeds
    // placed here are irrelevant: the serving front-end re-roots them by sequence id.
    Ok((0..count)
        .map(|i| {
            if i % 4 == 0 {
                Query::TopK {
                    k,
                    config: topk_config,
                }
            } else {
                Query::Ppr {
                    source: ((i as u64 * 31) % vertices) as VertexId,
                    k,
                    teleport_probability: 0.15,
                    method: PprMethod::MonteCarlo {
                        walkers: 2_000,
                        max_steps: 32,
                        seed: 0,
                    },
                }
            }
        })
        .collect())
}

fn cmd_serve(args: &Args) -> Result<()> {
    let graph = load_graph(args)?;
    let queries = serve_stream(args, &graph)?;
    let mut session = session_over(args, &graph, true)?;
    let mut handle = session.serve();
    let report = if args.has_flag("serial") {
        handle.serve_serial(&queries)
    } else {
        handle.serve(&queries)
    };
    eprintln!("{report}");

    println!("quantity,value");
    println!("queries,{}", queries.len());
    println!("workers,{}", report.workers.len());
    println!("served,{}", report.served);
    println!("rejected,{}", report.rejected);
    println!("failed,{}", report.failed);
    println!("wall_seconds,{:.6}", report.wall_seconds);
    println!("query_seconds,{:.6}", report.query_seconds);
    println!("qps,{:.2}", report.qps());
    for kind in frogwild::serve::QUERY_KINDS {
        let h = report.latency.histogram(kind);
        if h.count() == 0 {
            continue;
        }
        let label = kind.label();
        println!("{label}_served,{}", h.count());
        println!("{label}_mean_ms,{:.3}", h.mean_seconds() * 1e3);
        println!("{label}_p50_ms,{:.3}", h.p50() * 1e3);
        println!("{label}_p95_ms,{:.3}", h.p95() * 1e3);
        println!("{label}_p99_ms,{:.3}", h.p99() * 1e3);
    }
    // Queue wait (submission → start of execution) separated from the service time
    // above: together they account for each served query's end-to-end latency.
    for kind in frogwild::serve::QUERY_KINDS {
        let h = report.queue_wait.histogram(kind);
        if h.count() == 0 {
            continue;
        }
        let label = kind.label();
        println!("{label}_queue_wait_mean_ms,{:.3}", h.mean_seconds() * 1e3);
        println!("{label}_queue_wait_p50_ms,{:.3}", h.p50() * 1e3);
        println!("{label}_queue_wait_p95_ms,{:.3}", h.p95() * 1e3);
        println!("{label}_queue_wait_p99_ms,{:.3}", h.p99() * 1e3);
    }
    println!("worker,served,failed,batches,busy_seconds,queue_wait_seconds");
    for w in &report.workers {
        println!(
            "{},{},{},{},{:.6},{:.6}",
            w.worker, w.served, w.failed, w.batches, w.busy_seconds, w.queue_wait_seconds
        );
    }
    if args.has_flag("verbose") {
        if let Some(response) = report.responses().next() {
            eprintln!("{}", response.cost);
        }
    }
    print_session_stats(&session);
    if let Some(request) = trace_request(args)? {
        write_trace(session.tracer(), &request)?;
    }
    Ok(())
}

fn cmd_index(args: &Args) -> Result<()> {
    let graph = load_graph(args)?;
    let machines: usize = args.get_parsed("machines", 16, "an integer")?;
    if machines == 0 {
        return Err(Error::config(
            "command line",
            "--machines must be at least 1",
        ));
    }
    let config = walk_index_values(args)?;
    let trace = trace_request(args)?;
    // Partition explicitly (the same default ingress `build_walk_index_standalone`
    // uses) so the build can run under the CLI's tracer: each machine's segment
    // generation then lands in the trace as a `walk_segments` span.
    let tracer = Tracer::new(
        trace
            .as_ref()
            .map_or_else(TraceConfig::disabled, |r| r.config),
    );
    let pg = frogwild_engine::PartitionedGraph::build(
        &graph,
        machines,
        &frogwild_engine::ObliviousPartitioner,
        config.seed,
    );
    let (index, report) =
        frogwild::walkindex::build_walk_index_traced(&graph, &pg, &config, &tracer)?;
    println!("quantity,value");
    println!("vertices,{}", index.num_vertices());
    println!("requested_segments,{}", report.requested_segments);
    println!("effective_segments,{}", report.effective_segments);
    println!("segment_length,{}", report.segment_length);
    println!("machines,{}", report.machines);
    println!("arena_bytes,{}", report.arena_bytes);
    println!("total_hops,{}", report.total_hops);
    println!("truncated_segments,{}", report.truncated_segments);
    println!("build_seconds,{:.6}", report.build_seconds);

    let probes: usize = args.get_parsed("probe", 0usize, "an integer")?;
    if probes > 0 {
        let seed: u64 = args.get_parsed("seed", 42, "an integer")?;
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x1DE7_0B5E);
        let started = std::time::Instant::now();
        let mut totals = frogwild::walkindex::IndexServeStats::default();
        let sink = tracer.sink();
        for probe in 0..probes {
            let source = rng.gen_range(0..graph.num_vertices()) as VertexId;
            let mut span = sink.span(
                span_meta!("probe_ppr"),
                SpanKey::new(probe as u64, 0, 0, LANE_CLI),
            );
            let served = frogwild::walkindex::indexed_ppr(&graph, &index, &config, source, 0.15)?;
            span.counter("pushes", served.stats.pushes as u64);
            span.counter("frontier", served.stats.frontier_vertices);
            span.counter("segment_hits", served.stats.segment_hits);
            span.counter("segment_misses", served.stats.segment_misses);
            // Every miss resamples exactly one fresh hop.
            span.counter("resamples", served.stats.segment_misses);
            drop(span);
            totals.segment_hits += served.stats.segment_hits;
            totals.segment_misses += served.stats.segment_misses;
        }
        drop(sink);
        let serve_seconds = started.elapsed().as_secs_f64();
        println!("probe_queries,{probes}");
        println!("probe_seconds,{serve_seconds:.6}");
        println!("probe_segment_hits,{}", totals.segment_hits);
        println!("probe_segment_misses,{}", totals.segment_misses);
        println!("probe_hit_rate,{:.4}", totals.hit_rate());
        println!(
            "amortized_build_seconds,{:.6}",
            report.build_seconds / probes as f64
        );
    }
    if let Some(request) = &trace {
        write_trace(&tracer, request)?;
    }
    Ok(())
}

fn cmd_plan(args: &Args) -> Result<()> {
    use frogwild::confidence::plan_walkers;
    use frogwild::theory::{recommended_iterations, recommended_walkers};

    let k: usize = args.get_parsed("k", 100, "an integer")?;
    let vertices: usize = args.get_parsed("vertices", 100_000, "an integer")?;
    let mass: f64 = args.get_parsed("mass", 0.1, "a probability")?;
    let loss: f64 = args.get_parsed("loss", 0.02, "a positive number")?;
    let delta: f64 = args.get_parsed("delta", 0.1, "a probability")?;
    if k == 0 {
        return Err(Error::config("command line", "--k must be positive"));
    }
    let mass_ok = mass > 0.0 && mass <= 1.0;
    let delta_ok = delta > 0.0 && delta < 1.0;
    if !mass_ok || !delta_ok || loss <= 0.0 {
        return Err(Error::config(
            "command line",
            "--mass and --delta must be in (0, 1), --loss positive",
        ));
    }

    let plan = plan_walkers(k, vertices, mass, loss, delta);
    println!("# walker-budget plan for top-{k} on {vertices} vertices");
    println!("quantity,value");
    println!("walkers_theorem1_sampling_term,{}", plan.walkers_for_mass);
    println!(
        "walkers_per_vertex_frequency_term,{}",
        plan.walkers_for_frequency
    );
    println!("walkers_recommended,{}", plan.recommended);
    println!("walkers_remark6_scaling,{}", recommended_walkers(k, mass));
    println!(
        "iterations_remark6_scaling,{}",
        recommended_iterations(0.15, mass)
    );
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<()> {
    let graph = load_graph(args)?;
    let out = degree_summary(&graph, Direction::Out);
    let inn = degree_summary(&graph, Direction::In);
    println!("vertices,{}", graph.num_vertices());
    println!("edges,{}", graph.num_edges());
    println!("dangling_vertices,{}", graph.dangling_vertices().len());
    println!("out_degree_min,{}", out.min);
    println!("out_degree_mean,{:.3}", out.mean);
    println!("out_degree_max,{}", out.max);
    println!("in_degree_min,{}", inn.min);
    println!("in_degree_mean,{:.3}", inn.mean);
    println!("in_degree_max,{}", inn.max);
    match in_degree_tail_exponent(&graph, 0.05) {
        Some(theta) => println!("in_degree_tail_exponent,{theta:.3}"),
        None => println!("in_degree_tail_exponent,n/a"),
    }
    println!("memory_bytes,{}", graph.memory_bytes());
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<()> {
    let out = args.require("out")?.to_string();
    let graph = load_graph(args)?;
    write_edge_list_file(&graph, &out)
        .map_err(|e| Error::graph(format!("could not write {out}: {e}")))?;
    eprintln!("wrote {out}");
    Ok(())
}
