//! `frogwild` — command-line front end for the FrogWild reproduction.
//!
//! ```text
//! USAGE:
//!     frogwild <COMMAND> [OPTIONS]
//!
//! COMMANDS:
//!     topk       estimate the top-k PageRank vertices of a graph with FrogWild
//!     autotune   self-tuning top-k: pilot run → walker plan → full run
//!     pagerank   run the GraphLab-style PageRank baseline on the simulated cluster
//!     ppr        personalized PageRank from a source vertex (forward push / exact)
//!     plan       walker-budget planning for a target top-k accuracy
//!     stats      print basic structural statistics of an edge-list graph
//!     generate   write a synthetic Twitter-/LiveJournal-shaped graph as an edge list
//!
//! COMMON OPTIONS:
//!     --graph <path>       SNAP-style edge list (whitespace separated, # comments)
//!     --synthetic <kind>   use a generated graph instead: twitter | livejournal
//!     --vertices <n>       size of the synthetic graph              [default: 100000]
//!     --machines <n>       simulated cluster size                   [default: 16]
//!     --seed <n>           random seed                              [default: 42]
//!
//! TOPK OPTIONS:
//!     --k <n>              how many vertices to report              [default: 100]
//!     --walkers <n>        number of random walkers                 [default: 800000]
//!     --iterations <n>     engine supersteps                        [default: 4]
//!     --ps <p>             mirror synchronization probability       [default: 0.7]
//!     --parallel           one worker thread per simulated machine
//!
//! PAGERANK OPTIONS:
//!     --iterations <n>     number of iterations                     [default: 2]
//!     --exact              run to convergence instead
//!
//! PPR OPTIONS:
//!     --source <v>         source vertex id (required)
//!     --method <m>         push | exact                             [default: push]
//!     --epsilon <e>        forward-push threshold                   [default: 1e-7]
//!     --k <n>              how many vertices to report              [default: 20]
//!
//! PLAN OPTIONS:
//!     --k <n>              target top-k size                        [default: 100]
//!     --vertices <n>       graph size the query will run on         [default: 100000]
//!     --mass <m>           expected true top-k mass                 [default: 0.1]
//!     --loss <e>           tolerated captured-mass loss             [default: 0.02]
//!     --delta <d>          tolerated failure probability            [default: 0.1]
//!
//! GENERATE OPTIONS:
//!     --kind <k>           twitter | livejournal                    [default: twitter]
//!     --out <path>         output edge-list path (required)
//! ```

mod args;

use args::Args;
use frogwild::prelude::*;
use frogwild_graph::io::{read_edge_list_file, write_edge_list_file, EdgeListOptions};
use frogwild_graph::stats::{degree_summary, in_degree_tail_exponent, Direction};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "-h" || raw[0] == "help" {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let args = match Args::parse(&raw) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "topk" => cmd_topk(&args),
        "autotune" => cmd_autotune(&args),
        "pagerank" => cmd_pagerank(&args),
        "ppr" => cmd_ppr(&args),
        "plan" => cmd_plan(&args),
        "stats" => cmd_stats(&args),
        "generate" => cmd_generate(&args),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "frogwild — fast top-k PageRank approximation (FrogWild, VLDB 2015 reproduction)\n\n\
         usage: frogwild <topk|autotune|pagerank|ppr|plan|stats|generate> [options]\n\
         \n\
         common:   --graph <edge list> | --synthetic twitter|livejournal [--vertices N]\n\
         \u{20}          --machines N --seed N\n\
         topk:     --k N --walkers N --iterations N --ps P [--parallel]\n\
         autotune: --k N --loss E --delta D --ps P [--pilot-walkers N]\n\
         pagerank: --iterations N | --exact\n\
         ppr:      --source V [--method push|exact] [--epsilon E] [--k N]\n\
         plan:     --k N --vertices N --mass M --loss E --delta D\n\
         generate: --kind twitter|livejournal --vertices N --out <path>\n\
         \n\
         run `cargo doc --open -p frogwild` for the library documentation."
    );
}

/// Loads the graph named by `--graph`, or generates one per `--synthetic`.
fn load_graph(args: &Args) -> Result<DiGraph, String> {
    let seed: u64 = args.get_parsed("seed", 42, "an integer").map_err(|e| e.to_string())?;
    if let Some(path) = args.get("graph") {
        let (graph, _) = read_edge_list_file(path, &EdgeListOptions::default())
            .map_err(|e| format!("could not load {path}: {e}"))?;
        eprintln!(
            "loaded {path}: {} vertices, {} edges",
            graph.num_vertices(),
            graph.num_edges()
        );
        return Ok(graph);
    }
    let vertices: usize = args
        .get_parsed("vertices", 100_000, "an integer")
        .map_err(|e| e.to_string())?;
    let kind = args.get("synthetic").unwrap_or("twitter");
    let mut rng = SmallRng::seed_from_u64(seed);
    let graph = match kind {
        "twitter" => frogwild_graph::generators::twitter_like(vertices, &mut rng),
        "livejournal" => frogwild_graph::generators::livejournal_like(vertices, &mut rng),
        other => return Err(format!("unknown synthetic graph kind {other:?}")),
    };
    eprintln!(
        "generated {kind}-shaped graph: {} vertices, {} edges (seed {seed})",
        graph.num_vertices(),
        graph.num_edges()
    );
    Ok(graph)
}

fn cluster(args: &Args) -> Result<ClusterConfig, String> {
    let machines: usize = args
        .get_parsed("machines", 16, "an integer")
        .map_err(|e| e.to_string())?;
    let seed: u64 = args.get_parsed("seed", 42, "an integer").map_err(|e| e.to_string())?;
    if machines == 0 {
        return Err("--machines must be at least 1".to_string());
    }
    Ok(ClusterConfig::new(machines, seed))
}

fn cmd_topk(args: &Args) -> Result<(), String> {
    let graph = load_graph(args)?;
    let cluster = cluster(args)?;
    let config = FrogWildConfig {
        num_walkers: args
            .get_parsed("walkers", 800_000u64, "an integer")
            .map_err(|e| e.to_string())?,
        iterations: args
            .get_parsed("iterations", 4usize, "an integer")
            .map_err(|e| e.to_string())?,
        sync_probability: args
            .get_parsed("ps", 0.7f64, "a probability in (0, 1]")
            .map_err(|e| e.to_string())?,
        seed: cluster.seed,
        parallel: args.has_flag("parallel"),
        ..FrogWildConfig::default()
    };
    config.validate()?;
    let k: usize = args.get_parsed("k", 100, "an integer").map_err(|e| e.to_string())?;

    let report = run_frogwild(&graph, &cluster, &config);
    println!("# algorithm: {}", report.algorithm);
    println!(
        "# machines: {}, supersteps: {}, network bytes: {}, simulated time: {:.4}s",
        cluster.num_machines,
        report.cost.supersteps,
        report.cost.network_bytes,
        report.cost.simulated_total_seconds
    );
    println!("rank,vertex,estimated_mass");
    for (rank, v) in report.top_k(k).into_iter().enumerate() {
        println!("{},{},{:.8}", rank + 1, v, report.estimate[v as usize]);
    }
    Ok(())
}

fn cmd_pagerank(args: &Args) -> Result<(), String> {
    let graph = load_graph(args)?;
    let cluster = cluster(args)?;
    let config = if args.has_flag("exact") {
        PageRankConfig::exact()
    } else {
        PageRankConfig::truncated(
            args.get_parsed("iterations", 2usize, "an integer")
                .map_err(|e| e.to_string())?,
        )
    };
    let k: usize = args.get_parsed("k", 100, "an integer").map_err(|e| e.to_string())?;

    let report = run_graphlab_pr(&graph, &cluster, &config);
    println!("# algorithm: {}", report.algorithm);
    println!(
        "# machines: {}, supersteps: {}, network bytes: {}, simulated time: {:.4}s",
        cluster.num_machines,
        report.cost.supersteps,
        report.cost.network_bytes,
        report.cost.simulated_total_seconds
    );
    println!("rank,vertex,score");
    for (rank, v) in report.top_k(k).into_iter().enumerate() {
        println!("{},{},{:.8}", rank + 1, v, report.estimate[v as usize]);
    }
    Ok(())
}

fn cmd_autotune(args: &Args) -> Result<(), String> {
    use frogwild::autotune::{auto_topk, AutoTuneConfig};

    let graph = load_graph(args)?;
    let cluster = cluster(args)?;
    let k: usize = args.get_parsed("k", 100, "an integer").map_err(|e| e.to_string())?;
    let config = AutoTuneConfig {
        k,
        mass_loss_target: args
            .get_parsed("loss", 0.05, "a positive number")
            .map_err(|e| e.to_string())?,
        failure_probability: args
            .get_parsed("delta", 0.1, "a probability")
            .map_err(|e| e.to_string())?,
        sync_probability: args
            .get_parsed("ps", 0.7, "a probability in (0, 1]")
            .map_err(|e| e.to_string())?,
        pilot_walkers: args
            .get_parsed("pilot-walkers", 10_000u64, "an integer")
            .map_err(|e| e.to_string())?,
        seed: cluster.seed,
        ..AutoTuneConfig::default()
    };
    config.validate()?;

    let report = auto_topk(&graph, &cluster, &config);
    println!("# pilot: {} ({} bytes)", report.pilot.algorithm, report.pilot.cost.network_bytes);
    println!(
        "# plan: estimated top-{k} mass {:.4}, planned {} walkers / {} iterations",
        report.estimated_topk_mass, report.planned_walkers, report.planned_iterations
    );
    println!(
        "# final run: {} ({} bytes, {:.4}s simulated); pilot overhead {:.1}% of traffic",
        report.run.algorithm,
        report.run.cost.network_bytes,
        report.run.cost.simulated_total_seconds,
        report.pilot_overhead() * 100.0
    );
    println!("rank,vertex,estimated_mass");
    for (rank, v) in report.run.top_k(k).into_iter().enumerate() {
        println!("{},{},{:.8}", rank + 1, v, report.run.estimate[v as usize]);
    }
    Ok(())
}

fn cmd_ppr(args: &Args) -> Result<(), String> {
    use frogwild::ppr::{forward_push_ppr, personalized_pagerank, single_source_restart};

    let graph = load_graph(args)?;
    let source: u64 = args
        .get_parsed("source", u64::MAX, "a vertex id")
        .map_err(|e| e.to_string())?;
    if source == u64::MAX {
        return Err("--source is required for the ppr command".to_string());
    }
    if source as usize >= graph.num_vertices() {
        return Err(format!(
            "--source {source} is out of range for a graph with {} vertices",
            graph.num_vertices()
        ));
    }
    let source = source as VertexId;
    let k: usize = args.get_parsed("k", 20, "an integer").map_err(|e| e.to_string())?;
    let method = args.get("method").unwrap_or("push");

    let scores = match method {
        "push" => {
            let epsilon: f64 = args
                .get_parsed("epsilon", 1e-7, "a positive number")
                .map_err(|e| e.to_string())?;
            let result = forward_push_ppr(&graph, source, 0.15, epsilon);
            eprintln!(
                "forward push: {} pushes, residual mass {:.6}",
                result.pushes,
                result.residual_mass()
            );
            result.estimate
        }
        "exact" => {
            let restart = single_source_restart(graph.num_vertices(), source);
            let result = personalized_pagerank(&graph, &restart, 0.15, 200, 1e-10);
            eprintln!(
                "power iteration: {} iterations, residual {:.3e}",
                result.iterations, result.residual
            );
            result.scores
        }
        other => return Err(format!("unknown ppr method {other:?} (expected push or exact)")),
    };

    println!("# personalized PageRank from vertex {source} ({method})");
    println!("rank,vertex,ppr");
    for (rank, v) in top_k(&scores, k).into_iter().enumerate() {
        println!("{},{},{:.8}", rank + 1, v, scores[v as usize]);
    }
    Ok(())
}

fn cmd_plan(args: &Args) -> Result<(), String> {
    use frogwild::confidence::plan_walkers;
    use frogwild::theory::{recommended_iterations, recommended_walkers};

    let k: usize = args.get_parsed("k", 100, "an integer").map_err(|e| e.to_string())?;
    let vertices: usize = args
        .get_parsed("vertices", 100_000, "an integer")
        .map_err(|e| e.to_string())?;
    let mass: f64 = args
        .get_parsed("mass", 0.1, "a probability")
        .map_err(|e| e.to_string())?;
    let loss: f64 = args
        .get_parsed("loss", 0.02, "a positive number")
        .map_err(|e| e.to_string())?;
    let delta: f64 = args
        .get_parsed("delta", 0.1, "a probability")
        .map_err(|e| e.to_string())?;
    if k == 0 || !(0.0..=1.0).contains(&mass) || mass <= 0.0 || loss <= 0.0 || !(0.0..1.0).contains(&delta) || delta <= 0.0 {
        return Err("plan: k must be positive, mass/delta in (0, 1), loss positive".to_string());
    }

    let plan = plan_walkers(k, vertices, mass, loss, delta);
    println!("# walker-budget plan for top-{k} on {vertices} vertices");
    println!("quantity,value");
    println!("walkers_theorem1_sampling_term,{}", plan.walkers_for_mass);
    println!("walkers_per_vertex_frequency_term,{}", plan.walkers_for_frequency);
    println!("walkers_recommended,{}", plan.recommended);
    println!("walkers_remark6_scaling,{}", recommended_walkers(k, mass));
    println!(
        "iterations_remark6_scaling,{}",
        recommended_iterations(0.15, mass)
    );
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let graph = load_graph(args)?;
    let out = degree_summary(&graph, Direction::Out);
    let inn = degree_summary(&graph, Direction::In);
    println!("vertices,{}", graph.num_vertices());
    println!("edges,{}", graph.num_edges());
    println!("dangling_vertices,{}", graph.dangling_vertices().len());
    println!("out_degree_min,{}", out.min);
    println!("out_degree_mean,{:.3}", out.mean);
    println!("out_degree_max,{}", out.max);
    println!("in_degree_min,{}", inn.min);
    println!("in_degree_mean,{:.3}", inn.mean);
    println!("in_degree_max,{}", inn.max);
    match in_degree_tail_exponent(&graph, 0.05) {
        Some(theta) => println!("in_degree_tail_exponent,{theta:.3}"),
        None => println!("in_degree_tail_exponent,n/a"),
    }
    println!("memory_bytes,{}", graph.memory_bytes());
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let out = args.require("out").map_err(|e| e.to_string())?.to_string();
    let graph = load_graph(args)?;
    write_edge_list_file(&graph, &out).map_err(|e| format!("could not write {out}: {e}"))?;
    eprintln!("wrote {out}");
    Ok(())
}
