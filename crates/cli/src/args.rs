//! Minimal hand-rolled argument parsing (`--flag value` pairs after a subcommand).
//!
//! Kept dependency-free on purpose: the workspace restricts itself to the crates the
//! library itself needs, and the option surface is small enough that a hand-written
//! parser stays readable and fully unit-tested.

use std::collections::HashMap;

/// A parsed command line: the subcommand and its `--key value` options.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (`topk`, `pagerank`, `stats`, `generate`).
    pub command: String,
    /// `--key value` pairs, keys stored without the leading dashes.
    options: HashMap<String, String>,
    /// Bare `--flag` switches with no value.
    flags: Vec<String>,
}

/// Errors produced while interpreting the command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand was given.
    MissingCommand,
    /// A required option is absent.
    MissingOption(String),
    /// An option's value could not be parsed into the requested type.
    InvalidValue {
        /// Option name.
        option: String,
        /// The raw value supplied.
        value: String,
        /// What the value should have looked like.
        expected: &'static str,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand"),
            ArgError::MissingOption(name) => write!(f, "missing required option --{name}"),
            ArgError::InvalidValue {
                option,
                value,
                expected,
            } => write!(
                f,
                "invalid value {value:?} for --{option}: expected {expected}"
            ),
        }
    }
}

impl std::error::Error for ArgError {}

impl From<ArgError> for frogwild::Error {
    fn from(e: ArgError) -> Self {
        frogwild::Error::config("command line", e.to_string())
    }
}

impl Args {
    /// Parses a raw argument vector (without the program name).
    pub fn parse(raw: &[String]) -> Result<Args, ArgError> {
        let mut iter = raw.iter().peekable();
        let command = iter.next().cloned().ok_or(ArgError::MissingCommand)?;
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        while let Some(token) = iter.next() {
            let name = token.trim_start_matches('-').to_string();
            if !token.starts_with("--") {
                // Positional tokens are treated as the graph path shorthand.
                options.insert("graph".to_string(), token.clone());
                continue;
            }
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    options.insert(name, iter.next().cloned().unwrap());
                }
                _ => flags.push(name),
            }
        }
        Ok(Args {
            command,
            options,
            flags,
        })
    }

    /// Whether a bare `--flag` switch was present.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A string option, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(|s| s.as_str())
    }

    /// A required string option.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name)
            .ok_or_else(|| ArgError::MissingOption(name.to_string()))
    }

    /// A numeric/string option parsed into `T`, with a default when absent.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(value) => value.parse().map_err(|_| ArgError::InvalidValue {
                option: name.to_string(),
                value: value.to_string(),
                expected,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_vec(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_options() {
        let args = Args::parse(&to_vec(&["topk", "--graph", "g.txt", "--k", "50"])).unwrap();
        assert_eq!(args.command, "topk");
        assert_eq!(args.get("graph"), Some("g.txt"));
        assert_eq!(args.get_parsed("k", 100usize, "integer").unwrap(), 50);
        assert_eq!(
            args.get_parsed("walkers", 800_000u64, "integer").unwrap(),
            800_000
        );
    }

    #[test]
    fn positional_token_is_graph_shorthand() {
        let args = Args::parse(&to_vec(&["stats", "edges.txt"])).unwrap();
        assert_eq!(args.get("graph"), Some("edges.txt"));
    }

    #[test]
    fn flags_without_values() {
        let args = Args::parse(&to_vec(&["pagerank", "--graph", "g.txt", "--exact"])).unwrap();
        assert!(args.has_flag("exact"));
        assert!(!args.has_flag("parallel"));
    }

    #[test]
    fn missing_command_and_options_are_errors() {
        assert_eq!(Args::parse(&[]).unwrap_err(), ArgError::MissingCommand);
        let args = Args::parse(&to_vec(&["topk"])).unwrap();
        assert!(matches!(
            args.require("graph"),
            Err(ArgError::MissingOption(_))
        ));
    }

    #[test]
    fn invalid_numeric_values_are_reported() {
        let args = Args::parse(&to_vec(&["topk", "--k", "many"])).unwrap();
        let err = args
            .get_parsed("k", 10usize, "a positive integer")
            .unwrap_err();
        assert!(matches!(err, ArgError::InvalidValue { .. }));
        assert!(err.to_string().contains("--k"));
    }

    #[test]
    fn error_display_strings() {
        assert_eq!(ArgError::MissingCommand.to_string(), "missing subcommand");
        assert!(ArgError::MissingOption("graph".into())
            .to_string()
            .contains("--graph"));
    }
}
