//! Network-traffic and cost-scaling relationships — the systems side of the paper
//! (Figures 1, 3(b), 7(b) and 8).

use frogwild::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn test_graph(n: usize, seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    frogwild_graph::generators::twitter_like(n, &mut rng)
}

#[test]
fn frogwild_network_traffic_scales_down_with_ps() {
    // Figure 1(c) / 3(b): lowering ps lowers bytes sent, roughly proportionally.
    let graph = test_graph(2_000, 1);
    let cluster = ClusterConfig::new(16, 2);
    let pg = frogwild::driver::partition_graph(&graph, &cluster);

    let bytes = |ps: f64| {
        frogwild::driver::run_frogwild_on(
            &pg,
            &FrogWildConfig {
                num_walkers: 100_000,
                iterations: 4,
                sync_probability: ps,
                ..FrogWildConfig::default()
            },
        )
        .unwrap()
        .cost
        .network_bytes
    };

    let full = bytes(1.0);
    let b07 = bytes(0.7);
    let b04 = bytes(0.4);
    let b01 = bytes(0.1);
    assert!(
        full > b07 && b07 > b04 && b04 > b01,
        "bytes {full} {b07} {b04} {b01}"
    );
    // ps = 0.1 should save at least half of the traffic relative to full sync.
    assert!(
        (b01 as f64) < 0.5 * full as f64,
        "ps=0.1 bytes {b01} vs full {full}"
    );
}

#[test]
fn frogwild_uses_far_less_network_and_time_than_exact_pagerank() {
    // Figure 1: exact PR sends orders of magnitude more bytes and takes much longer.
    let graph = test_graph(2_000, 3);
    let cluster = ClusterConfig::new(16, 4);
    let pg = frogwild::driver::partition_graph(&graph, &cluster);

    let fw = frogwild::driver::run_frogwild_on(
        &pg,
        &FrogWildConfig {
            num_walkers: 50_000,
            iterations: 4,
            sync_probability: 0.4,
            ..FrogWildConfig::default()
        },
    )
    .unwrap();
    let pr_exact = frogwild::driver::run_graphlab_pr_on(
        &pg,
        &PageRankConfig {
            max_iterations: 30,
            tolerance: 1e-9,
            ..PageRankConfig::default()
        },
    )
    .unwrap();
    let pr_two = frogwild::driver::run_graphlab_pr_on(&pg, &PageRankConfig::truncated(2)).unwrap();

    assert!(fw.cost.network_bytes * 5 < pr_exact.cost.network_bytes);
    assert!(fw.cost.network_bytes < pr_two.cost.network_bytes);
    assert!(fw.cost.simulated_total_seconds < pr_exact.cost.simulated_total_seconds);
    assert!(fw.cost.simulated_cpu_seconds < pr_exact.cost.simulated_cpu_seconds);
    assert!(
        fw.cost.simulated_seconds_per_iteration < pr_exact.cost.simulated_seconds_per_iteration
    );
}

#[test]
fn network_traffic_scales_with_number_of_walkers() {
    // Figure 8: bytes sent grow roughly linearly in the number of initial walkers when
    // walkers are sparse on the graph.
    let graph = test_graph(3_000, 5);
    let cluster = ClusterConfig::new(20, 6);
    let pg = frogwild::driver::partition_graph(&graph, &cluster);

    let bytes = |walkers: u64| {
        frogwild::driver::run_frogwild_on(
            &pg,
            &FrogWildConfig {
                num_walkers: walkers,
                iterations: 4,
                sync_probability: 1.0,
                ..FrogWildConfig::default()
            },
        )
        .unwrap()
        .cost
        .network_bytes as f64
    };

    let small = bytes(2_000);
    let medium = bytes(4_000);
    let large = bytes(8_000);
    assert!(small < medium && medium < large);
    // doubling walkers should grow traffic noticeably but less than quadratically
    assert!(large / small > 1.5, "large {large}, small {small}");
    assert!(large / small < 6.0, "large {large}, small {small}");
}

#[test]
fn per_machine_network_is_reported_and_consistent() {
    let graph = test_graph(1_500, 7);
    let cluster = ClusterConfig::new(12, 8);
    let report = frogwild::driver::run_frogwild_on(
        &frogwild::driver::partition_graph(&graph, &cluster),
        &FrogWildConfig {
            num_walkers: 50_000,
            iterations: 4,
            ..FrogWildConfig::default()
        },
    )
    .unwrap();
    let per_machine_total: u64 = report
        .metrics
        .supersteps
        .iter()
        .flat_map(|s| s.network.bytes_per_machine.iter())
        .sum();
    assert_eq!(per_machine_total, report.cost.network_bytes);
    assert_eq!(report.metrics.num_machines, 12);
    assert!(report.cost.replication_factor >= 1.0);
}

#[test]
fn single_machine_cluster_sends_nothing() {
    let graph = test_graph(800, 9);
    let cluster = ClusterConfig::new(1, 10);
    let mut session = Session::builder(&graph)
        .machines(cluster.num_machines)
        .seed(cluster.seed)
        .build()
        .unwrap();
    let fw = session
        .query(&Query::TopK {
            k: 10,
            config: FrogWildConfig {
                num_walkers: 20_000,
                iterations: 4,
                ..FrogWildConfig::default()
            },
        })
        .unwrap();
    assert_eq!(fw.cost.network_bytes, 0);
    let pr = session
        .query(&Query::Pagerank {
            k: 10,
            config: PageRankConfig::truncated(2),
        })
        .unwrap();
    assert_eq!(pr.cost.network_bytes, 0);
    assert_eq!(session.stats().total_network_bytes, 0);
}

#[test]
fn skipped_synchronizations_grow_as_ps_drops() {
    let graph = test_graph(1_500, 11);
    let cluster = ClusterConfig::new(16, 12);
    let pg = frogwild::driver::partition_graph(&graph, &cluster);
    let skipped = |ps: f64| {
        frogwild::driver::run_frogwild_on(
            &pg,
            &FrogWildConfig {
                num_walkers: 50_000,
                iterations: 4,
                sync_probability: ps,
                ..FrogWildConfig::default()
            },
        )
        .unwrap()
        .cost
        .skipped_syncs
    };
    assert_eq!(skipped(1.0), 0);
    let s07 = skipped(0.7);
    let s01 = skipped(0.1);
    assert!(s01 > s07, "skipped at ps=0.1 ({s01}) vs ps=0.7 ({s07})");
    assert!(s07 > 0);
}

#[test]
fn more_machines_means_more_replication_and_traffic_for_pagerank() {
    // Figure 1(c): exact PR's traffic grows with the number of machines (more mirrors
    // to synchronize); this is the scaling pressure FrogWild sidesteps.
    let graph = test_graph(2_000, 13);
    let bytes = |machines: usize| {
        let mut session = Session::builder(&graph)
            .machines(machines)
            .seed(14)
            .build()
            .unwrap();
        session
            .query(&Query::Pagerank {
                k: 10,
                config: PageRankConfig::truncated(2),
            })
            .unwrap()
            .cost
            .network_bytes
    };
    let few = bytes(4);
    let many = bytes(24);
    assert!(many > few, "24 machines {many} vs 4 machines {few}");
}
