//! Baseline comparisons: the uniform-sparsification pipeline of Figure 5 and the
//! truncated-PageRank baselines, compared against FrogWild on the same cluster.

use frogwild::prelude::*;
use frogwild::sparsify::SparsifiedBaselineConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn test_graph(n: usize, seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    frogwild_graph::generators::twitter_like(n, &mut rng)
}

#[test]
fn sparsified_pagerank_accuracy_is_comparable_but_cost_is_higher_than_frogwild() {
    // Figure 5: 2-iteration PR on a sparsified graph reaches accuracy comparable to
    // FrogWild but at a noticeably higher cost — it still synchronizes and signals
    // every vertex every iteration, while FrogWild only touches the vertices that
    // currently host walkers. At integration-test scale the comparable quantities are
    // the per-iteration time, CPU work and network bytes (the paper's total-time gap
    // additionally needs per-superstep work to dominate the superstep barrier, which
    // requires the harness-scale graphs — see EXPERIMENTS.md).
    let graph = test_graph(2_500, 1);
    let truth = exact_pagerank(&graph, 0.15, 200, 1e-12);
    let cluster = ClusterConfig::new(12, 2);
    let k = 100;

    // Walkers ≪ vertices: the regime both the paper and the algorithm target.
    let mut session = Session::builder(&graph)
        .machines(cluster.num_machines)
        .seed(cluster.seed)
        .build()
        .unwrap();
    let fw = session
        .query(&Query::TopK {
            k,
            config: FrogWildConfig {
                num_walkers: 500,
                iterations: 4,
                sync_probability: 0.7,
                ..FrogWildConfig::default()
            },
        })
        .unwrap();
    let fw_mass = mass_captured(&fw.estimate, &truth.scores, k).normalized();
    assert!(fw_mass > 0.5, "frogwild accuracy {fw_mass}");

    for q in [0.4, 0.7] {
        let baseline =
            run_sparsified_pr(&graph, &cluster, q, &PageRankConfig::truncated(2)).unwrap();
        let mass = mass_captured(&baseline.estimate, &truth.scores, k).normalized();
        // comparable accuracy…
        assert!(mass > 0.75, "sparsified q={q} accuracy {mass}");
        // …but higher per-iteration time, CPU and network than FrogWild.
        assert!(
            baseline.cost.simulated_seconds_per_iteration
                > fw.cost.simulated_seconds / fw.cost.supersteps.max(1) as f64,
            "q={q}: sparsified {}s/iter vs FrogWild {}s/iter",
            baseline.cost.simulated_seconds_per_iteration,
            fw.cost.simulated_seconds / fw.cost.supersteps.max(1) as f64
        );
        assert!(
            baseline.cost.simulated_cpu_seconds > fw.cost.simulated_cpu_seconds,
            "q={q}: sparsified CPU {} vs FrogWild {}",
            baseline.cost.simulated_cpu_seconds,
            fw.cost.simulated_cpu_seconds
        );
        assert!(
            baseline.cost.network_bytes > fw.cost.network_bytes,
            "q={q}: sparsified {} bytes vs FrogWild {} bytes",
            baseline.cost.network_bytes,
            fw.cost.network_bytes
        );
    }
}

#[test]
fn sparsification_reduces_pagerank_cost_but_not_below_frogwild() {
    // Sanity on the baseline itself: lower q means fewer edges and less per-iteration
    // work than the full-graph PR.
    let graph = test_graph(2_000, 3);
    let cluster = ClusterConfig::new(12, 4);

    let full = frogwild::driver::run_graphlab_pr_on(
        &frogwild::driver::partition_graph(&graph, &cluster),
        &PageRankConfig::truncated(2),
    )
    .unwrap();
    let sparsified =
        run_sparsified_pr(&graph, &cluster, 0.4, &PageRankConfig::truncated(2)).unwrap();
    assert!(
        sparsified.cost.simulated_cpu_seconds < full.cost.simulated_cpu_seconds,
        "sparsified CPU {} vs full {}",
        sparsified.cost.simulated_cpu_seconds,
        full.cost.simulated_cpu_seconds
    );
}

#[test]
fn paper_sweep_configs_are_usable_end_to_end() {
    let graph = test_graph(1_200, 5);
    let truth = exact_pagerank(&graph, 0.15, 150, 1e-10);
    let cluster = ClusterConfig::new(8, 6);
    for config in SparsifiedBaselineConfig::paper_sweep() {
        let report = run_sparsified_pr(
            &graph,
            &cluster,
            config.keep_probability,
            &config.pagerank_config(9),
        )
        .unwrap();
        assert_eq!(report.estimate.len(), graph.num_vertices());
        let mass = mass_captured(&report.estimate, &truth.scores, 50).normalized();
        assert!(mass > 0.6, "q={} accuracy {mass}", config.keep_probability);
    }
}

#[test]
fn exact_pagerank_baseline_dominates_accuracy_but_not_cost() {
    let graph = test_graph(1_500, 7);
    let truth = exact_pagerank(&graph, 0.15, 200, 1e-12);
    let cluster = ClusterConfig::new(12, 8);
    let pg = frogwild::driver::partition_graph(&graph, &cluster);

    let exact = frogwild::driver::run_graphlab_pr_on(
        &pg,
        &PageRankConfig {
            max_iterations: 40,
            tolerance: 1e-10,
            ..PageRankConfig::default()
        },
    )
    .unwrap();
    let one = frogwild::driver::run_graphlab_pr_on(&pg, &PageRankConfig::truncated(1)).unwrap();
    let fw = frogwild::driver::run_frogwild_on(
        &pg,
        &FrogWildConfig {
            num_walkers: 100_000,
            iterations: 4,
            sync_probability: 0.7,
            ..FrogWildConfig::default()
        },
    )
    .unwrap();

    let k = 100;
    let exact_mass = mass_captured(&exact.estimate, &truth.scores, k).normalized();
    let one_mass = mass_captured(&one.estimate, &truth.scores, k).normalized();
    let fw_mass = mass_captured(&fw.estimate, &truth.scores, k).normalized();

    // Accuracy ordering: exact >= FrogWild >= 1-iteration PR (up to a small tolerance:
    // on R-MAT stand-ins the 1-iteration baseline is stronger than on the real Twitter
    // graph because synthetic PageRank correlates heavily with weighted in-degree —
    // see EXPERIMENTS.md).
    assert!(exact_mass > 0.99);
    assert!(
        fw_mass > one_mass - 0.02,
        "FrogWild {fw_mass} vs PR-1 {one_mass}"
    );
    // Cost ordering: exact costs the most by far.
    assert!(exact.cost.network_bytes > fw.cost.network_bytes);
    assert!(exact.cost.network_bytes > one.cost.network_bytes);
    assert!(exact.cost.simulated_total_seconds > fw.cost.simulated_total_seconds);
}
