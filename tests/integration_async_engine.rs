//! Integration pins for bounded-staleness (async inter-machine) execution.
//!
//! Three contracts, layered on top of `integration_delta_engine`'s golden pins:
//!
//! * `staleness = 0` through the unified `ExecutionConfig` surface reproduces the
//!   synchronous executor's golden fingerprints **bit-for-bit** — the async refactor
//!   must be invisible until the window opens;
//! * a fixed `staleness > 0` is deterministic and bit-identical across worker
//!   counts: delivery order is decided by the engine's fixed drain schedule
//!   `(superstep, machine, key-range batch)`, never by host-thread interleaving;
//! * the window must pay for itself: on a ~100k-edge power-law graph, `s >= 1`
//!   spends measurably less simulated wall-time than the barriered run (the overlap
//!   is reported as `barrier_wait_avoided_seconds`) at matched top-20 accuracy.

use frogwild::prelude::*;
use frogwild_graph::generators::twitter_like;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-sensitive fold of the exact f64 bit patterns of an estimate.
fn fingerprint(estimate: &[f64]) -> u64 {
    let mut acc = 0x243F_6A88_85A3_08D3u64;
    for &x in estimate {
        acc = splitmix64(acc ^ x.to_bits());
    }
    acc
}

fn frogwild_base() -> FrogWildConfig {
    FrogWildConfig {
        num_walkers: 50_000,
        iterations: 4,
        sync_probability: 0.7,
        ..FrogWildConfig::default()
    }
}

fn twitter_layout() -> frogwild_engine::PartitionedGraph {
    let mut rng = SmallRng::seed_from_u64(5);
    let graph = twitter_like(5_000, &mut rng);
    partition_graph(&graph, &ClusterConfig::new(16, 9))
}

#[test]
fn staleness_zero_reproduces_the_synchronous_golden_fingerprints() {
    let pg = twitter_layout();
    for execution in [
        ExecutionConfig::default(),
        ExecutionConfig::new().staleness(0),
        ExecutionConfig::new()
            .workers(3)
            .batch_size(33)
            .staleness(0),
    ] {
        let report = run_frogwild_with(
            &pg,
            &FrogWildConfig {
                parallel: execution.workers != 0,
                ..frogwild_base()
            },
            &execution,
        )
        .unwrap();
        assert_eq!(
            fingerprint(&report.estimate),
            0xc498_2688_7c36_ed28,
            "{execution:?}"
        );
        assert_eq!(report.cost.network_bytes, 1_192_472);
        assert_eq!(report.cost.network_messages, 49_012);
        assert_eq!(report.cost.staleness_lag, 0);
        assert_eq!(report.cost.max_inbox_depth, 0);
        assert_eq!(report.cost.barrier_wait_avoided_seconds, 0.0);
    }
}

#[test]
fn fixed_staleness_is_deterministic_across_worker_counts() {
    let pg = twitter_layout();
    let config = FrogWildConfig {
        iterations: 6,
        parallel: true,
        ..frogwild_base()
    };
    for staleness in [1usize, 2, 4] {
        let serial = run_frogwild_with(
            &pg,
            &FrogWildConfig {
                parallel: false,
                ..config
            },
            &ExecutionConfig::new().staleness(staleness),
        )
        .unwrap();
        // Walkers are conserved: delayed messages are delivered late, never dropped.
        assert!((serial.estimate.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(serial.cost.staleness_lag > 0, "s={staleness}");
        for workers in [2usize, 5, 8] {
            let pooled = run_frogwild_with(
                &pg,
                &config,
                &ExecutionConfig::new().workers(workers).staleness(staleness),
            )
            .unwrap();
            assert_eq!(
                fingerprint(&pooled.estimate),
                fingerprint(&serial.estimate),
                "s={staleness} workers={workers}"
            );
            assert_eq!(serial.cost.network_bytes, pooled.cost.network_bytes);
            assert_eq!(serial.cost.routed_messages, pooled.cost.routed_messages);
            assert_eq!(serial.cost.staleness_lag, pooled.cost.staleness_lag);
            assert_eq!(
                serial.cost.barrier_wait_avoided_seconds.to_bits(),
                pooled.cost.barrier_wait_avoided_seconds.to_bits()
            );
        }
    }
}

#[test]
fn staleness_cuts_simulated_wall_time_at_matched_topk_accuracy() {
    // ~100k-edge power-law graph (102,410 edges).
    let mut rng = SmallRng::seed_from_u64(42);
    let graph = twitter_like(3_000, &mut rng);
    assert!(graph.num_edges() >= 100_000);
    let pg = partition_graph(&graph, &ClusterConfig::new(16, 9));
    let config = FrogWildConfig {
        num_walkers: 50_000,
        iterations: 6,
        sync_probability: 0.7,
        ..FrogWildConfig::default()
    };

    let sync = run_frogwild_with(&pg, &config, &ExecutionConfig::default()).unwrap();
    let exact = exact_pagerank(&graph, 0.15, 200, 1e-13);
    let k = 20;
    let sync_mass = mass_captured(&sync.estimate, &exact.scores, k).normalized();

    for staleness in [1usize, 2] {
        let stale =
            run_frogwild_with(&pg, &config, &ExecutionConfig::new().staleness(staleness)).unwrap();
        // Measurably less simulated barrier wall-time...
        assert!(
            stale.cost.simulated_total_seconds < sync.cost.simulated_total_seconds,
            "s={staleness}: {} vs sync {}",
            stale.cost.simulated_total_seconds,
            sync.cost.simulated_total_seconds
        );
        assert!(
            stale.cost.barrier_wait_avoided_seconds > 0.0,
            "s={staleness}"
        );
        // ... with the avoided wait accounting for exactly the gap to the
        // per-superstep barriered cost of the same work schedule.
        assert!(stale.cost.staleness_lag > 0, "s={staleness}");
        // ... at matched top-20 accuracy against exact PageRank.
        let stale_mass = mass_captured(&stale.estimate, &exact.scores, k).normalized();
        assert!(
            stale_mass >= sync_mass - 0.05,
            "s={staleness}: mass {stale_mass} vs sync {sync_mass}"
        );
    }
}

#[test]
fn stale_sessions_surface_the_async_telemetry() {
    let mut rng = SmallRng::seed_from_u64(5);
    let graph = twitter_like(2_000, &mut rng);
    let mut session = Session::builder(&graph)
        .machines(8)
        .seed(11)
        .execution(ExecutionConfig::new().staleness(2))
        .build()
        .unwrap();
    let response = session
        .query(&Query::top_k_with(
            20,
            FrogWildConfig {
                num_walkers: 20_000,
                iterations: 6,
                sync_probability: 0.7,
                ..FrogWildConfig::default()
            },
        ))
        .unwrap();
    assert_eq!(response.ranking.len(), 20);
    assert!(response.cost.staleness_lag > 0);
    assert!(response.cost.barrier_wait_avoided_seconds > 0.0);
    let stats = session.stats();
    assert_eq!(stats.total_staleness_lag, response.cost.staleness_lag);
    assert!(stats.total_barrier_wait_avoided_seconds > 0.0);
    assert!(stats.to_string().contains("barrier wait avoided"));
}
