//! Integration tests for `frogwild::obs` — the acceptance criteria of the
//! structured-tracing subsystem.
//!
//! Pinned here:
//!
//! * **bit-identity**: tracing observes, never steers. Every response — engine
//!   top-k, GraphLab PageRank, index-served PPR, through the serial path and the
//!   worker pool, synchronous and bounded-stale — is identical with tracing off,
//!   on the logical clock, and on the host clock;
//! * **byte-stable merges**: under [`TraceConfig::logical`] the merged timeline's
//!   CSV export is a pure function of the work, pinned byte-for-byte against a
//!   checked-in golden file (regenerate with `FROGWILD_UPDATE_GOLDEN=1`);
//! * **chrome round-trip**: the chrome trace-event export of a concurrent serve
//!   run parses under the in-repo validator and accounts for every timeline entry;
//! * a disabled tracer records nothing and a traced serve covers every layer
//!   (admission events, execute spans, index spans).

use frogwild::obs::{validate_chrome_json, TraceConfig};
use frogwild::prelude::*;
use frogwild::session::PprMethod;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::path::Path;

const K: usize = 10;

fn test_graph() -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(7);
    frogwild_graph::generators::twitter_like(800, &mut rng)
}

/// A mixed stream exercising every serving path: index-served top-k, the engine
/// (GraphLab PageRank), and index-served Monte-Carlo PPR.
fn mixed_stream(count: usize, vertices: u64) -> Vec<Query> {
    (0..count)
        .map(|i| {
            if i % 4 == 0 {
                Query::TopK {
                    k: K,
                    config: FrogWildConfig {
                        num_walkers: 5_000,
                        iterations: 2,
                        sync_probability: 0.7,
                        ..FrogWildConfig::default()
                    },
                }
            } else if i % 4 == 2 {
                Query::Pagerank {
                    k: K,
                    config: PageRankConfig::truncated(2),
                }
            } else {
                Query::Ppr {
                    source: ((i as u64 * 31) % vertices) as VertexId,
                    k: K,
                    teleport_probability: 0.15,
                    method: PprMethod::MonteCarlo {
                        walkers: 1_000,
                        max_steps: 16,
                        seed: 0,
                    },
                }
            }
        })
        .collect()
}

fn session_over(graph: &DiGraph, tracing: TraceConfig, staleness: usize) -> Session<'_> {
    Session::builder(graph)
        .machines(4)
        .seed(42)
        .execution(ExecutionConfig::new().staleness(staleness))
        .walk_index(WalkIndexConfig {
            segments_per_vertex: 2,
            segment_length: 4,
            ..WalkIndexConfig::default()
        })
        .tracing(tracing)
        .build()
        .expect("valid test configuration")
}

#[test]
fn tracing_is_bit_identical_across_workers_and_staleness() {
    let graph = test_graph();
    let queries = mixed_stream(12, graph.num_vertices() as u64);
    for staleness in [0usize, 1] {
        let mut baseline_session = session_over(&graph, TraceConfig::disabled(), staleness);
        let baseline = baseline_session.serve().serve_serial(&queries);
        assert_eq!(baseline.served, queries.len() as u64);
        for tracing in [TraceConfig::logical(), TraceConfig::enabled()] {
            for workers in [0usize, 2] {
                let mut session = session_over(&graph, tracing, staleness);
                let report = if workers == 0 {
                    session.serve().serve_serial(&queries)
                } else {
                    session
                        .serve_with(ServeConfig::with_workers(workers))
                        .expect("valid test configuration")
                        .serve(&queries)
                };
                assert_eq!(report.served, queries.len() as u64);
                for (i, (a, b)) in baseline.responses().zip(report.responses()).enumerate() {
                    assert_eq!(
                        a, b,
                        "query {i} diverged (staleness {staleness}, {workers} workers, traced)"
                    );
                }
                // The traced sessions really did record something.
                assert!(
                    !session.tracer().finish().is_empty(),
                    "traced session recorded nothing"
                );
            }
        }
    }
}

/// The deterministic workload behind the golden file: an index-served top-k, an
/// engine PageRank, and an index-served PPR on a fixed graph, logical clock.
fn logical_trace_csv() -> String {
    let graph = test_graph();
    let mut session = session_over(&graph, TraceConfig::logical(), 0);
    session
        .query(&Query::TopK {
            k: K,
            config: FrogWildConfig {
                num_walkers: 5_000,
                iterations: 2,
                sync_probability: 0.7,
                ..FrogWildConfig::default()
            },
        })
        .expect("topk");
    session
        .query(&Query::Pagerank {
            k: K,
            config: PageRankConfig::truncated(2),
        })
        .expect("pagerank");
    session
        .query(&Query::Ppr {
            source: 3,
            k: K,
            teleport_probability: 0.15,
            method: PprMethod::MonteCarlo {
                walkers: 1_000,
                max_steps: 16,
                seed: 0,
            },
        })
        .expect("ppr");
    session.tracer().finish().to_csv()
}

#[test]
fn logical_traces_are_byte_stable_across_runs() {
    assert_eq!(
        logical_trace_csv(),
        logical_trace_csv(),
        "two identical logical-clock runs must merge to identical bytes"
    );
}

#[test]
fn logical_trace_matches_the_golden_file() {
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/obs_trace.csv");
    let got = logical_trace_csv();
    if std::env::var_os("FROGWILD_UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &got).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden file missing; regenerate with FROGWILD_UPDATE_GOLDEN=1");
    assert_eq!(
        got, golden,
        "merged logical trace drifted from tests/golden/obs_trace.csv; if the \
         instrumentation changed intentionally, regenerate with FROGWILD_UPDATE_GOLDEN=1"
    );
}

#[test]
fn chrome_export_round_trips_through_the_validator() {
    let graph = test_graph();
    let queries = mixed_stream(8, graph.num_vertices() as u64);
    let mut session = session_over(&graph, TraceConfig::enabled(), 0);
    let report = session
        .serve_with(ServeConfig::with_workers(2))
        .expect("valid test configuration")
        .serve(&queries);
    assert_eq!(report.served, queries.len() as u64);
    let timeline = session.tracer().finish();
    let json = timeline.to_chrome_json();
    let events = validate_chrome_json(&json).expect("chrome export must validate");
    assert_eq!(
        events,
        timeline.entries().len(),
        "every timeline entry must survive the export"
    );
    // The trace covers all three layers: the serve pool (enqueue/execute), the
    // session's index serving, and the engine's supersteps.
    let names: Vec<&str> = timeline.entries().iter().map(|e| e.name).collect();
    for expected in [
        "enqueue",
        "dequeue",
        "execute_topk",
        "index_ppr",
        "superstep",
    ] {
        assert!(names.contains(&expected), "missing {expected:?} span");
    }
}

#[test]
fn disabled_tracer_records_nothing() {
    let graph = test_graph();
    let mut session = session_over(&graph, TraceConfig::disabled(), 0);
    let queries = mixed_stream(4, graph.num_vertices() as u64);
    let report = session.serve().serve_serial(&queries);
    assert_eq!(report.served, queries.len() as u64);
    let timeline = session.tracer().finish();
    assert!(timeline.is_empty());
    assert_eq!(validate_chrome_json(&timeline.to_chrome_json()), Ok(0));
}
