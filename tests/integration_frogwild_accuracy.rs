//! End-to-end accuracy of FrogWild on the simulated engine, against exact PageRank —
//! the relationships behind Figures 2, 3, 6 and 7 and Theorem 1.

use frogwild::prelude::*;
use frogwild::theory;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn twitter_like_graph(n: usize, seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    frogwild_graph::generators::twitter_like(n, &mut rng)
}

#[test]
fn frogwild_captures_most_topk_mass_at_full_sync() {
    let graph = twitter_like_graph(2_000, 1);
    let truth = exact_pagerank(&graph, 0.15, 200, 1e-12);
    let mut session = Session::builder(&graph)
        .machines(16)
        .seed(2)
        .build()
        .unwrap();
    let report = session
        .query(&Query::TopK {
            k: 300,
            config: FrogWildConfig {
                num_walkers: 200_000,
                iterations: 4,
                sync_probability: 1.0,
                ..FrogWildConfig::default()
            },
        })
        .unwrap();
    for k in [30usize, 100, 300] {
        let m = mass_captured(&report.estimate, &truth.scores, k);
        assert!(
            m.normalized() > 0.9,
            "k={k}: captured only {}",
            m.normalized()
        );
    }
    let ident = exact_identification(&report.estimate, &truth.scores, 100);
    assert!(ident > 0.6, "exact identification {ident}");
}

#[test]
fn accuracy_degrades_gracefully_as_ps_decreases() {
    // Figure 2(a): accuracy at ps = 0.4 is still high, at ps = 0.1 still reasonable,
    // and accuracy is (weakly) monotone in ps up to Monte-Carlo noise.
    let graph = twitter_like_graph(2_000, 3);
    let truth = exact_pagerank(&graph, 0.15, 200, 1e-12);
    let cluster = ClusterConfig::new(16, 4);
    let pg = frogwild::driver::partition_graph(&graph, &cluster);
    let k = 100;

    let run = |ps: f64| {
        let report = frogwild::driver::run_frogwild_on(
            &pg,
            &FrogWildConfig {
                num_walkers: 200_000,
                iterations: 4,
                sync_probability: ps,
                ..FrogWildConfig::default()
            },
        )
        .unwrap();
        mass_captured(&report.estimate, &truth.scores, k).normalized()
    };

    let acc_full = run(1.0);
    let acc_07 = run(0.7);
    let acc_04 = run(0.4);
    let acc_01 = run(0.1);

    assert!(acc_full > 0.9, "full sync accuracy {acc_full}");
    assert!(acc_07 > 0.85, "ps=0.7 accuracy {acc_07}");
    assert!(acc_04 > 0.8, "ps=0.4 accuracy {acc_04}");
    assert!(acc_01 > 0.6, "ps=0.1 accuracy {acc_01}");
    // graceful degradation: the drop from full sync to ps=0.1 should not be a collapse
    assert!(
        acc_full - acc_01 < 0.35,
        "full {acc_full} vs ps=0.1 {acc_01}"
    );
}

#[test]
fn more_walkers_and_more_iterations_improve_accuracy() {
    // Figure 6(a)/(b): accuracy grows with the number of walkers and with the number of
    // iterations (up to noise).
    let graph = twitter_like_graph(1_500, 5);
    let truth = exact_pagerank(&graph, 0.15, 200, 1e-12);
    let cluster = ClusterConfig::new(8, 6);
    let pg = frogwild::driver::partition_graph(&graph, &cluster);
    let k = 100;

    let run = |walkers: u64, iterations: usize| {
        let report = frogwild::driver::run_frogwild_on(
            &pg,
            &FrogWildConfig {
                num_walkers: walkers,
                iterations,
                sync_probability: 0.7,
                ..FrogWildConfig::default()
            },
        )
        .unwrap();
        mass_captured(&report.estimate, &truth.scores, k).normalized()
    };

    let few_walkers = run(5_000, 4);
    let many_walkers = run(200_000, 4);
    assert!(
        many_walkers > few_walkers - 0.02,
        "200k walkers ({many_walkers}) should beat 5k walkers ({few_walkers})"
    );
    assert!(many_walkers - few_walkers > -0.02);

    let few_iters = run(100_000, 2);
    let more_iters = run(100_000, 5);
    assert!(
        more_iters > few_iters - 0.02,
        "5 iterations ({more_iters}) should not be worse than 2 ({few_iters})"
    );
}

#[test]
fn measured_loss_stays_within_theorem1_envelope() {
    // Theorem 1 bounds µ_k(π) - µ_k(π̂) by ε with probability 1 - δ. The bound is loose
    // at this scale, so the test checks containment, not tightness.
    let graph = twitter_like_graph(2_000, 7);
    let truth = exact_pagerank(&graph, 0.15, 200, 1e-12);
    let pi_max = truth.scores.iter().cloned().fold(0.0, f64::max);
    let cluster = ClusterConfig::new(16, 8);

    let k = 30;
    let iterations = 5;
    let walkers = 150_000u64;
    let ps = 0.4;

    let mut session = Session::builder(&graph)
        .machines(cluster.num_machines)
        .seed(cluster.seed)
        .build()
        .unwrap();
    let report = session
        .query(&Query::TopK {
            k,
            config: FrogWildConfig {
                num_walkers: walkers,
                iterations,
                sync_probability: ps,
                ..FrogWildConfig::default()
            },
        })
        .unwrap();
    let m = mass_captured(&report.estimate, &truth.scores, k);

    let p_intersect =
        theory::intersection_probability_bound(graph.num_vertices(), iterations, 0.15, pi_max);
    let epsilon = theory::theorem1_epsilon(0.15, iterations, k, 0.1, walkers, ps, p_intersect);
    assert!(
        m.loss() <= epsilon,
        "measured loss {} exceeds Theorem 1 bound {epsilon}",
        m.loss()
    );
}

#[test]
fn frogwild_matches_or_beats_one_iteration_pagerank_on_accuracy() {
    // Figure 2: FrogWild with ps >= 0.7 outperforms 1-iteration GraphLab PR on the real
    // Twitter graph. On the R-MAT stand-in the 1-iteration baseline is artificially
    // strong (PageRank is heavily in-degree-correlated — see EXPERIMENTS.md), so the
    // assertion allows a small tolerance rather than requiring a strict win.
    let graph = twitter_like_graph(2_000, 9);
    let truth = exact_pagerank(&graph, 0.15, 200, 1e-12);
    let cluster = ClusterConfig::new(16, 10);
    let pg = frogwild::driver::partition_graph(&graph, &cluster);

    let fw = frogwild::driver::run_frogwild_on(
        &pg,
        &FrogWildConfig {
            num_walkers: 200_000,
            iterations: 4,
            sync_probability: 0.7,
            ..FrogWildConfig::default()
        },
    )
    .unwrap();
    let pr1 = frogwild::driver::run_graphlab_pr_on(&pg, &PageRankConfig::truncated(1)).unwrap();

    let k = 100;
    let fw_mass = mass_captured(&fw.estimate, &truth.scores, k).normalized();
    let pr1_mass = mass_captured(&pr1.estimate, &truth.scores, k).normalized();
    assert!(
        fw_mass > pr1_mass - 0.02,
        "FrogWild ({fw_mass}) should match or beat 1-iteration PR ({pr1_mass})"
    );
    assert!(fw_mass > 0.9, "FrogWild accuracy {fw_mass}");
}

#[test]
fn estimator_matches_serial_monte_carlo_reference() {
    // With full synchronization the engine-run walkers are plain independent walkers,
    // so the estimate must agree with the serial Monte-Carlo reference up to sampling
    // noise (compare captured mass under each other).
    let graph = twitter_like_graph(1_000, 11);
    let cluster = ClusterConfig::new(8, 12);
    let mut rng = SmallRng::seed_from_u64(13);

    let engine_est = Session::builder(&graph)
        .machines(cluster.num_machines)
        .seed(cluster.seed)
        .build()
        .unwrap()
        .query(&Query::TopK {
            k: 50,
            config: FrogWildConfig {
                num_walkers: 150_000,
                iterations: 6,
                sync_probability: 1.0,
                ..FrogWildConfig::default()
            },
        })
        .unwrap()
        .estimate;
    let serial_est = serial_random_walk_pagerank(&graph, 150_000, 5, 0.15, &mut rng);

    let k = 50;
    let cross = mass_captured(&engine_est, &serial_est, k);
    assert!(
        cross.normalized() > 0.9,
        "engine and serial Monte-Carlo disagree: {}",
        cross.normalized()
    );
}
