//! Cross-crate integration tests: the distributed engine's PageRank must agree with the
//! serial reference implementation, independent of cluster size and partitioner.

use frogwild::metrics::{l1_distance, mass_captured};
use frogwild::prelude::*;
use frogwild::programs::PageRankProgram;
use frogwild_engine::{
    Engine, EngineConfig, GridPartitioner, InitialActivation, ObliviousPartitioner,
    PartitionedGraph, RandomPartitioner, SyncPolicy,
};
use frogwild_graph::generators::simple::{complete, cycle, star, two_communities};
use frogwild_graph::generators::{livejournal_like, rmat, RmatParams};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn normalized_engine_pagerank(graph: &DiGraph, machines: usize, iterations: usize) -> Vec<f64> {
    let mut session = Session::builder(graph)
        .machines(machines)
        .seed(99)
        .build()
        .unwrap();
    let response = session
        .query(&Query::Pagerank {
            k: 10,
            config: frogwild::PageRankConfig {
                max_iterations: iterations,
                tolerance: 1e-12,
                ..frogwild::PageRankConfig::default()
            },
        })
        .unwrap();
    response.estimate
}

#[test]
fn engine_pagerank_matches_serial_reference_on_random_graph() {
    let mut rng = SmallRng::seed_from_u64(42);
    let graph = rmat(800, RmatParams::default(), &mut rng);
    let reference = exact_pagerank(&graph, 0.15, 200, 1e-13);
    for machines in [1usize, 4, 16] {
        let engine_scores = normalized_engine_pagerank(&graph, machines, 100);
        let distance = l1_distance(&engine_scores, &reference.scores);
        assert!(
            distance < 1e-6,
            "{machines} machines: l1 distance to reference {distance}"
        );
    }
}

#[test]
fn engine_pagerank_matches_reference_on_structured_graphs() {
    for graph in [cycle(64), star(100), complete(40), two_communities(30)] {
        let reference = exact_pagerank(&graph, 0.15, 300, 1e-13);
        let engine_scores = normalized_engine_pagerank(&graph, 6, 150);
        let distance = l1_distance(&engine_scores, &reference.scores);
        assert!(distance < 1e-6, "l1 distance {distance}");
    }
}

#[test]
fn engine_pagerank_is_invariant_to_partitioner_choice() {
    let mut rng = SmallRng::seed_from_u64(7);
    let graph = livejournal_like(600, &mut rng);
    let config = frogwild::PageRankConfig {
        max_iterations: 40,
        tolerance: 1e-12,
        ..frogwild::PageRankConfig::default()
    };
    let program = || PageRankProgram::new(&config).unwrap();
    let engine_config = EngineConfig {
        sync_policy: SyncPolicy::Full,
        max_supersteps: config.max_iterations,
        ..EngineConfig::default()
    };

    let mut results = Vec::new();
    let partitioners: [&dyn frogwild_engine::Partitioner; 3] =
        [&RandomPartitioner, &GridPartitioner, &ObliviousPartitioner];
    for partitioner in partitioners {
        let pg = PartitionedGraph::build(&graph, 8, partitioner, 11);
        let engine = Engine::new(&pg, program(), engine_config.clone()).unwrap();
        let out = engine.run(InitialActivation::AllVertices);
        let mut scores: Vec<f64> = out.states.iter().map(|s| s.rank).collect();
        frogwild::topk::normalize(&mut scores);
        results.push(scores);
    }
    for other in &results[1..] {
        let distance = l1_distance(&results[0], other);
        assert!(distance < 1e-9, "partitioners disagree by {distance}");
    }
}

#[test]
fn truncated_engine_pagerank_matches_truncated_power_iteration() {
    // Two iterations of the engine PageRank must equal two iterations of the GraphLab
    // recurrence computed directly (rank starts at 1.0, unnormalised).
    let mut rng = SmallRng::seed_from_u64(9);
    let graph = rmat(300, RmatParams::default(), &mut rng);
    let n = graph.num_vertices();

    // Direct recurrence.
    let mut rank = vec![1.0f64; n];
    for _ in 0..2 {
        let mut next = vec![0.15f64; n];
        for v in graph.vertices() {
            let share = 0.85 * rank[v as usize] / graph.out_degree(v) as f64;
            for &dst in graph.out_neighbors(v) {
                next[dst as usize] += share;
            }
        }
        rank = next;
    }
    let mut expected = rank;
    frogwild::topk::normalize(&mut expected);

    let engine_scores = normalized_engine_pagerank(&graph, 4, 2);
    let distance = l1_distance(&engine_scores, &expected);
    assert!(distance < 1e-9, "l1 distance {distance}");
}

#[test]
fn one_iteration_pagerank_ranks_by_weighted_in_degree() {
    // The paper notes that one iteration of PageRank "actually estimates only the
    // in-degree of a node": the 1-iteration ranking must coincide with the ranking by
    // Σ_{j -> i} 1/d_out(j).
    let mut rng = SmallRng::seed_from_u64(13);
    let graph = rmat(400, RmatParams::default(), &mut rng);
    let engine_scores = normalized_engine_pagerank(&graph, 4, 1);

    let weighted_in_degree: Vec<f64> = graph
        .vertices()
        .map(|v| {
            graph
                .in_neighbors(v)
                .iter()
                .map(|&u| 1.0 / graph.out_degree(u) as f64)
                .sum()
        })
        .collect();

    let k = 25;
    let m = mass_captured(&engine_scores, &weighted_in_degree, k);
    assert!(
        m.normalized() > 0.999,
        "1-iteration PR should order vertices like weighted in-degree, captured {}",
        m.normalized()
    );
}
