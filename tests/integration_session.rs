//! Integration tests for the `Session` query service: reuse semantics, determinism,
//! equivalence with the one-shot drivers, and typed error paths.

use frogwild::autotune::AutoTuneConfig;
use frogwild::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn test_graph(n: usize, seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    frogwild_graph::generators::twitter_like(n, &mut rng)
}

fn fw_config(walkers: u64) -> FrogWildConfig {
    FrogWildConfig {
        num_walkers: walkers,
        iterations: 4,
        sync_probability: 0.7,
        ..FrogWildConfig::default()
    }
}

#[test]
fn consecutive_queries_reuse_the_partitioned_layout() {
    // The acceptance property of the session API: the second (and every later) query
    // is served without re-partitioning — its cost report shows zero partitioning
    // seconds and the session's replication factor, unchanged.
    let graph = test_graph(1_500, 1);
    let mut session = Session::builder(&graph)
        .machines(12)
        .seed(2)
        .build()
        .unwrap();
    let build_rf = session.replication_factor();
    assert!(
        session.stats().partition_seconds > 0.0,
        "build() partitions"
    );

    let first = session
        .query(&Query::TopK {
            k: 20,
            config: fw_config(30_000),
        })
        .unwrap();
    let second = session
        .query(&Query::Pagerank {
            k: 20,
            config: PageRankConfig::truncated(2),
        })
        .unwrap();

    for (label, response) in [("first", &first), ("second", &second)] {
        assert_eq!(
            response.cost.partition_seconds, 0.0,
            "{label} query repartitioned"
        );
        assert!(!response.cost.repartitioned, "{label} query repartitioned");
        assert_eq!(
            response.cost.replication_factor, build_rf,
            "{label} query changed the replication factor"
        );
    }
    // The session-level partitioning cost did not grow with the second query.
    assert_eq!(session.stats().queries_served, 2);
    assert!(session.stats().amortized_partition_seconds() < session.stats().partition_seconds);
}

#[test]
fn same_seed_gives_identical_responses_across_repeats() {
    let graph = test_graph(1_200, 3);
    let mut session = Session::builder(&graph)
        .machines(8)
        .seed(5)
        .build()
        .unwrap();
    let query = Query::TopK {
        k: 25,
        config: fw_config(40_000),
    };
    let first = session.query(&query).unwrap();
    let second = session.query(&query).unwrap();
    let third = session.query(&query).unwrap();
    assert_eq!(first, second);
    assert_eq!(second, third);
    // Different seed ⇒ different walker placement ⇒ (almost surely) different estimate.
    let reseeded = session
        .query(&Query::TopK {
            k: 25,
            config: FrogWildConfig {
                seed: 999,
                ..fw_config(40_000)
            },
        })
        .unwrap();
    assert_ne!(first.estimate, reseeded.estimate);
}

#[test]
fn session_topk_matches_fresh_one_shot_run_bit_for_bit() {
    // A session query over the default (oblivious) partitioner must equal the one-shot
    // driver path on a freshly partitioned cluster with the same seeds.
    let graph = test_graph(1_500, 7);
    let machines = 12;
    let seed = 11;
    let config = fw_config(50_000);

    let mut session = Session::builder(&graph)
        .machines(machines)
        .seed(seed)
        .build()
        .unwrap();
    let response = session.query(&Query::TopK { k: 30, config }).unwrap();

    let cluster = ClusterConfig::new(machines, seed);
    let one_shot = run_frogwild_on(&partition_graph(&graph, &cluster), &config).unwrap();

    assert_eq!(response.estimate, one_shot.estimate);
    assert_eq!(response.top_vertices(), one_shot.top_k(30));
    assert_eq!(response.cost.network_bytes, one_shot.cost.network_bytes);
    assert_eq!(response.cost.supersteps, one_shot.cost.supersteps);
}

#[test]
fn session_pagerank_matches_fresh_one_shot_run_bit_for_bit() {
    let graph = test_graph(1_000, 13);
    let machines = 8;
    let seed = 17;
    let config = PageRankConfig::truncated(2);

    let mut session = Session::builder(&graph)
        .machines(machines)
        .seed(seed)
        .build()
        .unwrap();
    let response = session.query(&Query::Pagerank { k: 30, config }).unwrap();

    let cluster = ClusterConfig::new(machines, seed);
    let one_shot = run_graphlab_pr_on(&partition_graph(&graph, &cluster), &config).unwrap();
    assert_eq!(response.estimate, one_shot.estimate);
}

#[test]
fn autotuned_query_runs_and_reports_plan_details() {
    let graph = test_graph(1_000, 19);
    let mut session = Session::builder(&graph)
        .machines(8)
        .seed(23)
        .build()
        .unwrap();
    let response = session
        .query(&Query::AutotunedTopK {
            config: AutoTuneConfig {
                k: 20,
                pilot_walkers: 2_000,
                max_walkers: 60_000,
                ..AutoTuneConfig::default()
            },
        })
        .unwrap();
    assert_eq!(response.ranking.len(), 20);
    match response.detail {
        ResponseDetail::AutotunedTopK {
            estimated_topk_mass,
            planned_walkers,
            planned_iterations,
            pilot_network_bytes,
        } => {
            assert!(estimated_topk_mass > 0.0 && estimated_topk_mass <= 1.0);
            assert!((2_000..=60_000).contains(&planned_walkers));
            assert!(planned_iterations >= 1);
            assert!(pilot_network_bytes > 0);
            // The response cost includes the pilot's traffic.
            assert!(response.cost.network_bytes > pilot_network_bytes);
        }
        ref other => panic!("wrong detail variant: {other:?}"),
    }
}

#[test]
fn partitioner_choice_changes_layout_but_not_correctness() {
    let graph = test_graph(1_500, 29);
    let truth = exact_pagerank(&graph, 0.15, 200, 1e-12);
    for kind in PartitionerKind::ALL {
        let mut session = Session::builder(&graph)
            .machines(8)
            .partitioner(kind)
            .seed(31)
            .build()
            .unwrap();
        assert_eq!(session.partitioner(), kind);
        let response = session
            .query(&Query::Pagerank {
                k: 30,
                config: PageRankConfig::exact(),
            })
            .unwrap();
        let mass = mass_captured(&response.estimate, &truth.scores, 30).normalized();
        assert!(mass > 0.99, "{kind}: mass {mass}");
    }
}

// ---------------------------------------------------------------- error paths

#[test]
fn builder_errors_are_typed() {
    let graph = test_graph(200, 37);
    match Session::builder(&graph).machines(0).build() {
        Err(Error::InvalidConfig { context, message }) => {
            assert_eq!(context, "SessionBuilder");
            assert!(message.contains("machines"));
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    let empty = DiGraph::empty(0);
    assert!(matches!(
        Session::builder(&empty).build(),
        Err(Error::Graph { .. })
    ));
}

#[test]
fn each_invalid_frogwild_config_field_returns_invalid_config() {
    let graph = test_graph(200, 41);
    let mut session = Session::builder(&graph).machines(2).build().unwrap();
    let base = fw_config(1_000);
    let bad_configs = [
        FrogWildConfig {
            num_walkers: 0,
            ..base
        },
        FrogWildConfig {
            iterations: 0,
            ..base
        },
        FrogWildConfig {
            teleport_probability: 0.0,
            ..base
        },
        FrogWildConfig {
            teleport_probability: 1.0,
            ..base
        },
        FrogWildConfig {
            sync_probability: 0.0,
            ..base
        },
        FrogWildConfig {
            sync_probability: 1.5,
            ..base
        },
    ];
    for config in bad_configs {
        match session.query(&Query::TopK { k: 5, config }) {
            Err(Error::InvalidConfig { context, .. }) => {
                assert_eq!(context, "FrogWildConfig")
            }
            other => panic!("{config:?} should fail validation, got {other:?}"),
        }
    }
}

#[test]
fn each_invalid_pagerank_config_field_returns_invalid_config() {
    let graph = test_graph(200, 43);
    let mut session = Session::builder(&graph).machines(2).build().unwrap();
    let base = PageRankConfig::default();
    let bad_configs = [
        PageRankConfig {
            max_iterations: 0,
            ..base
        },
        PageRankConfig {
            teleport_probability: 1.5,
            ..base
        },
        PageRankConfig {
            tolerance: -1.0,
            ..base
        },
    ];
    for config in bad_configs {
        match session.query(&Query::Pagerank { k: 5, config }) {
            Err(Error::InvalidConfig { context, .. }) => {
                assert_eq!(context, "PageRankConfig")
            }
            other => panic!("{config:?} should fail validation, got {other:?}"),
        }
    }
}

#[test]
fn invalid_autotune_and_ppr_queries_return_typed_errors() {
    let graph = test_graph(200, 47);
    let mut session = Session::builder(&graph).machines(2).build().unwrap();
    assert!(matches!(
        session.query(&Query::AutotunedTopK {
            config: AutoTuneConfig {
                mass_loss_target: 0.0,
                ..AutoTuneConfig::default()
            },
        }),
        Err(Error::InvalidConfig {
            context: "AutoTuneConfig",
            ..
        })
    ));
    assert!(matches!(
        session.query(&Query::Ppr {
            source: 0,
            k: 5,
            teleport_probability: 1.0,
            method: PprMethod::ForwardPush { epsilon: 1e-6 },
        }),
        Err(Error::InvalidConfig {
            context: "Query::Ppr",
            ..
        })
    ));
    assert!(matches!(
        session.query(&Query::Ppr {
            source: 0,
            k: 5,
            teleport_probability: 0.15,
            method: PprMethod::PowerIteration {
                max_iterations: 0,
                tolerance: 1e-9
            },
        }),
        Err(Error::InvalidConfig {
            context: "PprMethod::PowerIteration",
            ..
        })
    ));
    // Malformed query (not a config problem): out-of-range source.
    assert!(matches!(
        session.query(&Query::Ppr {
            source: u32::MAX,
            k: 5,
            teleport_probability: 0.15,
            method: PprMethod::ForwardPush { epsilon: 1e-6 },
        }),
        Err(Error::Query { .. })
    ));
    // Failed queries never count towards the served stream.
    assert_eq!(session.stats().queries_served, 0);
}
