//! Integration tests for the concurrent serving front-end: the acceptance criteria
//! of the multi-threaded query engine.
//!
//! Pinned here:
//!
//! * a mixed top-k / PPR stream answered through the worker pool is **bit-identical**
//!   to the serial reference path for every worker count — only completion order may
//!   differ, never a response;
//! * the bounded submission queue turns overload into explicit
//!   [`QueryOutcome::Rejected`] outcomes (load shedding) or a bounded wait
//!   (timeout admission) without deadlocking and with every query accounted for;
//! * failed queries surface as per-query outcomes, not stream aborts;
//! * serving telemetry (latency percentiles, host-vs-wall seconds, rejection counts)
//!   lands in the session's cumulative [`SessionStats`] and its `Display`;
//! * with ≥8 hardware threads, 8 workers beat 1 worker by ≥3x on the 100-query
//!   stream (gated on [`std::thread::available_parallelism`] so single-core CI
//!   boxes still validate determinism, just not the speedup).

use frogwild::prelude::*;
use frogwild::serve::QueryOutcome;
use frogwild::session::PprMethod;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;

const K: usize = 20;

/// ~100k edges: the twitter-shaped generator averages out-degree ≈ 34.
fn test_graph() -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(7);
    frogwild_graph::generators::twitter_like(3_000, &mut rng)
}

/// A smaller graph for the tests that only exercise control flow.
fn small_graph() -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(7);
    frogwild_graph::generators::twitter_like(600, &mut rng)
}

/// A mixed stream: one global top-k per four queries, the rest personalized
/// Monte-Carlo PPR (the randomized methods are the determinism stress case).
fn mixed_stream(count: usize, vertices: u64) -> Vec<Query> {
    (0..count)
        .map(|i| {
            if i % 4 == 0 {
                Query::TopK {
                    k: K,
                    config: FrogWildConfig {
                        num_walkers: 8_000,
                        iterations: 3,
                        sync_probability: 0.7,
                        ..FrogWildConfig::default()
                    },
                }
            } else {
                Query::Ppr {
                    source: ((i as u64 * 31) % vertices) as VertexId,
                    k: K,
                    teleport_probability: 0.15,
                    method: PprMethod::MonteCarlo {
                        walkers: 2_000,
                        max_steps: 32,
                        seed: 0,
                    },
                }
            }
        })
        .collect()
}

fn session_over(graph: &DiGraph) -> Session<'_> {
    Session::builder(graph)
        .machines(8)
        .seed(42)
        .walk_index(WalkIndexConfig::default())
        .build()
        .expect("valid test configuration")
}

#[test]
fn every_worker_count_is_bit_identical_to_the_serial_path() {
    let graph = test_graph();
    assert!(
        graph.num_edges() >= 100_000,
        "workload should be ~100k edges"
    );
    let queries = mixed_stream(32, graph.num_vertices() as u64);

    let mut serial_session = session_over(&graph);
    let serial = serial_session.serve().serve_serial(&queries);
    assert_eq!(serial.served, 32);

    for workers in [1usize, 2, 4, 8] {
        let mut session = session_over(&graph);
        let report = session
            .serve_with(ServeConfig::with_workers(workers))
            .expect("valid test configuration")
            .serve(&queries);
        assert_eq!(report.served, 32, "{workers} workers");
        assert_eq!(report.rejected, 0, "{workers} workers");
        let pairs: Vec<_> = serial.responses().zip(report.responses()).collect();
        assert_eq!(pairs.len(), 32);
        for (i, (a, b)) in pairs.into_iter().enumerate() {
            assert_eq!(a, b, "query {i} diverged under {workers} workers");
        }
        // The two sessions also agree on every deterministic cumulative counter.
        assert_eq!(
            serial_session.stats().total_walk_hops,
            session.stats().total_walk_hops
        );
        assert_eq!(
            serial_session.stats().total_push_ops,
            session.stats().total_push_ops
        );
    }
}

#[test]
fn overload_with_reject_admission_sheds_load_and_accounts_for_everything() {
    let graph = small_graph();
    let queries = mixed_stream(64, graph.num_vertices() as u64);
    let mut session = session_over(&graph);
    let report = session
        .serve_with(ServeConfig {
            workers: 1,
            queue_depth: 1,
            batch: 1,
            admission: Admission::Reject,
        })
        .expect("valid test configuration")
        .serve(&queries);

    assert_eq!(report.outcomes.len(), 64);
    assert_eq!(report.served + report.rejected + report.failed, 64);
    assert!(
        report.rejected > 0,
        "a 1-deep queue under a 64-query burst must shed load"
    );
    // Served responses are still the deterministic ones: re-serving the same stream
    // serially yields the same response at every position that was served.
    let mut reference_session = session_over(&graph);
    let reference = reference_session.serve().serve_serial(&queries);
    for (i, outcome) in report.outcomes.iter().enumerate() {
        if let QueryOutcome::Served(response) = outcome {
            assert_eq!(
                response.as_ref(),
                reference.outcomes[i].response().unwrap(),
                "served query {i}"
            );
        }
    }
    // The rejection count flows into the session's cumulative stats and Display.
    assert_eq!(session.stats().queries_rejected, report.rejected);
    let rendered = session.stats().to_string();
    assert!(rendered.contains("rejected by admission control"));
}

#[test]
fn timeout_admission_bounds_the_wait_and_still_serves() {
    let graph = small_graph();
    let queries = mixed_stream(16, graph.num_vertices() as u64);
    let mut session = session_over(&graph);
    let report = session
        .serve_with(ServeConfig {
            workers: 1,
            queue_depth: 2,
            batch: 2,
            admission: Admission::Timeout(Duration::from_millis(200)),
        })
        .expect("valid test configuration")
        .serve(&queries);
    // A generous timeout on a small stream behaves like backpressure: everything
    // is served, nothing rejected — and the call returned, so nothing deadlocked.
    assert_eq!(report.served + report.rejected, 16);
    assert!(report.served > 0);
}

#[test]
fn failed_queries_surface_as_outcomes_not_stream_aborts() {
    let graph = small_graph();
    let mut queries = mixed_stream(8, graph.num_vertices() as u64);
    // k = 0 fails validation inside the worker, after admission.
    queries[3] = Query::TopK {
        k: 0,
        config: FrogWildConfig::default(),
    };
    let mut session = session_over(&graph);
    let report = session
        .serve_with(ServeConfig::with_workers(2))
        .expect("valid test configuration")
        .serve(&queries);
    assert_eq!(report.served, 7);
    assert_eq!(report.failed, 1);
    assert!(matches!(report.outcomes[3], QueryOutcome::Failed(_)));
    // The failure does not pollute the session's served counters.
    assert_eq!(session.stats().queries_served, 7);
}

#[test]
fn latency_and_wall_telemetry_flow_into_session_stats() {
    let graph = small_graph();
    let queries = mixed_stream(12, graph.num_vertices() as u64);
    let mut session = session_over(&graph);
    let report = session
        .serve_with(ServeConfig::with_workers(2))
        .expect("valid test configuration")
        .serve(&queries);

    // The report's histograms cover every served query, split by kind.
    assert_eq!(report.latency.count(), 12);
    assert_eq!(report.latency.histogram(QueryKind::TopK).count(), 3);
    assert_eq!(report.latency.histogram(QueryKind::Ppr).count(), 9);
    let overall = report.latency.overall();
    assert!(overall.p50() <= overall.p95() && overall.p95() <= overall.p99());
    assert!(report.qps() > 0.0);

    // Host time (per-query sum) and wall time (elapsed) are recorded separately;
    // under concurrency they legitimately differ.
    let stats = session.stats();
    assert!(stats.total_host_seconds > 0.0);
    assert!(stats.total_wall_seconds > 0.0);
    assert!(stats.effective_concurrency() > 0.0);
    assert_eq!(stats.latency.count(), 12);

    // And the Display surface mentions all of it.
    let rendered = stats.to_string();
    assert!(rendered.contains("latency (service time):"));
    assert!(rendered.contains("p99"));
    assert!(rendered.contains("effective concurrency"));

    // Per-worker counters cover the full stream.
    assert_eq!(report.workers.len(), 2);
    let per_worker: u64 = report.workers.iter().map(|w| w.served).sum();
    assert_eq!(per_worker, 12);
}

#[test]
fn eight_workers_beat_one_by_3x_on_parallel_hardware() {
    let parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    if parallelism < 8 {
        eprintln!(
            "skipping throughput assertion: only {parallelism} hardware threads \
             (determinism is still covered by the other tests)"
        );
        return;
    }
    let graph = test_graph();
    let queries = mixed_stream(100, graph.num_vertices() as u64);

    let mut one = session_over(&graph);
    let single = one
        .serve_with(ServeConfig::with_workers(1))
        .expect("valid test configuration")
        .serve(&queries);
    let mut eight = session_over(&graph);
    let pooled = eight
        .serve_with(ServeConfig::with_workers(8))
        .expect("valid test configuration")
        .serve(&queries);

    assert_eq!(single.served, 100);
    assert_eq!(pooled.served, 100);
    let speedup = single.wall_seconds / pooled.wall_seconds.max(1e-12);
    assert!(
        speedup >= 3.0,
        "8 workers should serve the stream ≥3x faster than 1 (got {speedup:.2}x)"
    );
}
