//! Cross-crate integration: every vertex-cut ingress strategy produces a valid
//! partitioned graph, and the FrogWild / PageRank results are *correct* regardless of
//! which partitioner laid the data out — only the cost changes.

use frogwild::prelude::*;
use frogwild_engine::{
    GridPartitioner, HdrfPartitioner, HybridPartitioner, ObliviousPartitioner, PartitionedGraph,
    Partitioner, RandomPartitioner,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn test_graph(n: usize, seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    frogwild_graph::generators::twitter_like(n, &mut rng)
}

/// All five ingress strategies under test, with stable labels.
fn all_partitioners() -> Vec<(&'static str, Box<dyn Partitioner>)> {
    vec![
        ("random", Box::new(RandomPartitioner)),
        ("grid", Box::new(GridPartitioner)),
        ("oblivious", Box::new(ObliviousPartitioner)),
        ("hdrf", Box::new(HdrfPartitioner::default())),
        ("hybrid", Box::new(HybridPartitioner::default())),
    ]
}

#[test]
fn every_partitioner_produces_a_valid_partitioned_graph() {
    let graph = test_graph(1_500, 3);
    for machines in [4usize, 16] {
        for (name, partitioner) in all_partitioners() {
            let pg = PartitionedGraph::build(&graph, machines, partitioner.as_ref(), 7);
            pg.validate()
                .unwrap_or_else(|e| panic!("{name} on {machines} machines: {e}"));
            assert_eq!(pg.num_vertices(), graph.num_vertices());
            assert_eq!(pg.num_edges(), graph.num_edges());
            assert_eq!(pg.num_machines(), machines);
            let rf = pg.placement().replication_factor();
            assert!(
                rf >= 1.0 - 1e-12 && rf <= machines as f64 + 1e-12,
                "{name}: replication factor {rf} out of range"
            );
        }
    }
}

#[test]
fn pagerank_result_is_independent_of_the_partitioner() {
    // The data layout must never change the numbers the engine computes — only the
    // traffic needed to compute them. Exact PageRank is deterministic, so the estimates
    // across partitioners must agree to floating-point noise.
    let graph = test_graph(1_200, 5);
    let truth = exact_pagerank(&graph, 0.15, 200, 1e-12);
    let config = PageRankConfig {
        max_iterations: 30,
        tolerance: 1e-9,
        ..PageRankConfig::default()
    };
    let mut estimates = Vec::new();
    for (name, partitioner) in all_partitioners() {
        let pg = PartitionedGraph::build(&graph, 12, partitioner.as_ref(), 9);
        let report = frogwild::driver::run_graphlab_pr_on(&pg, &config).unwrap();
        let mass = mass_captured(&report.estimate, &truth.scores, 50).normalized();
        assert!(mass > 0.99, "{name}: mass {mass}");
        estimates.push((name, report.estimate));
    }
    let (_, reference) = &estimates[0];
    for (name, estimate) in &estimates[1..] {
        let diff = frogwild::metrics::l1_distance(reference, estimate);
        assert!(
            diff < 1e-6,
            "{name}: l1 distance to reference layout {diff}"
        );
    }
}

#[test]
fn frogwild_accuracy_holds_across_partitioners_and_costs_track_replication() {
    let graph = test_graph(2_000, 13);
    let truth = exact_pagerank(&graph, 0.15, 200, 1e-12);
    let k = 50;
    let config = FrogWildConfig {
        num_walkers: 60_000,
        iterations: 4,
        sync_probability: 0.7,
        ..FrogWildConfig::default()
    };

    let mut by_name = Vec::new();
    for (name, partitioner) in all_partitioners() {
        let pg = PartitionedGraph::build(&graph, 16, partitioner.as_ref(), 21);
        let report = frogwild::driver::run_frogwild_on(&pg, &config).unwrap();
        let mass = mass_captured(&report.estimate, &truth.scores, k).normalized();
        // High-replication layouts (random, hybrid sources) lose more accuracy under
        // partial synchronization because the even-split scatter divides walkers across
        // more replicas with fewer local edges each — the same correlation effect
        // Theorem 1 charges to (1 - p_s²). Low-replication ingress stays near the top.
        let floor = if name == "oblivious" || name == "hdrf" {
            0.8
        } else {
            0.6
        };
        assert!(mass > floor, "{name}: mass {mass}");
        by_name.push((
            name,
            pg.placement().replication_factor(),
            report.cost.network_bytes,
        ));
    }

    // Replication factor and synchronization traffic move together: the partitioner
    // with the highest replication must not produce less traffic than the one with the
    // lowest (the engine synchronizes one cached copy per mirror).
    let (max_name, _, max_bytes) = by_name
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    let (min_name, _, min_bytes) = by_name
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    assert!(
        max_bytes >= min_bytes,
        "{max_name} (highest replication, {max_bytes} bytes) vs {min_name} (lowest, {min_bytes} bytes)"
    );
}

#[test]
fn partial_sync_saves_traffic_under_every_partitioner() {
    let graph = test_graph(1_500, 17);
    for (name, partitioner) in all_partitioners() {
        let pg = PartitionedGraph::build(&graph, 12, partitioner.as_ref(), 31);
        let base = FrogWildConfig {
            num_walkers: 30_000,
            iterations: 4,
            ..FrogWildConfig::default()
        };
        let full = frogwild::driver::run_frogwild_on(&pg, &base).unwrap();
        let partial = frogwild::driver::run_frogwild_on(
            &pg,
            &FrogWildConfig {
                sync_probability: 0.1,
                ..base
            },
        )
        .unwrap();
        assert!(
            partial.cost.network_bytes < full.cost.network_bytes,
            "{name}: ps=0.1 {} bytes vs ps=1 {} bytes",
            partial.cost.network_bytes,
            full.cost.network_bytes
        );
        assert!(partial.cost.skipped_syncs > 0, "{name}: no syncs skipped");
    }
}
