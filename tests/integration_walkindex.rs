//! Integration tests for the walk-index subsystem: the acceptance criteria of the
//! index-served query service.
//!
//! Pinned here:
//!
//! * a stream of 100 PPR queries on a ~100k-edge graph served from a walk index runs
//!   at least 5x faster end-to-end than fresh Monte-Carlo at matched top-20 accuracy
//!   (the same demonstration `examples/walk_index.rs` prints);
//! * sessions that do not enable the index are bit-identical to the plain session
//!   behaviour (the subsystem is strictly additive);
//! * index builds are deterministic across machine counts and threading, respect the
//!   memory budget, and report their cost through `QueryCost` / `SessionStats`.

use frogwild::ppr::{personalized_pagerank, single_source_restart};
use frogwild::prelude::*;
use frogwild::session::PprMethod;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

const K: usize = 20;
const QUERIES: usize = 100;
const SCORED: usize = 8;

/// ~100k edges: the twitter-shaped generator averages out-degree ≈ 34.
fn test_graph() -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(7);
    frogwild_graph::generators::twitter_like(3_000, &mut rng)
}

fn mc_query(source: VertexId) -> Query {
    Query::Ppr {
        source,
        k: K,
        teleport_probability: 0.15,
        method: PprMethod::MonteCarlo {
            walkers: 40_000,
            max_steps: 64,
            seed: 11,
        },
    }
}

#[test]
fn index_served_stream_is_5x_faster_at_matched_accuracy() {
    let graph = test_graph();
    assert!(
        graph.num_edges() >= 100_000,
        "workload should be ~100k edges"
    );

    let mut fresh = Session::builder(&graph)
        .machines(8)
        .seed(1)
        .build()
        .unwrap();
    let time_stream = |session: &mut Session<'_>| -> (Vec<Response>, f64) {
        let started = Instant::now();
        let responses = (0..QUERIES as VertexId)
            .map(|s| session.query(&mc_query(s)).unwrap())
            .collect();
        (responses, started.elapsed().as_secs_f64())
    };
    let (fresh_responses, mut fresh_seconds) = time_stream(&mut fresh);

    let mut indexed = Session::builder(&graph)
        .machines(8)
        .seed(1)
        .walk_index(WalkIndexConfig::default())
        .build()
        .unwrap();
    let (indexed_responses, mut indexed_seconds) = time_stream(&mut indexed);

    // ----------------------------------------------------------------- latency
    // Wall-clock ratios are load-sensitive; if a transient noisy neighbour landed in
    // either timing window, re-measure both streams once (responses are deterministic,
    // so only the clock changes) and take the minimum per stream before judging.
    if indexed_seconds * 5.0 > fresh_seconds {
        fresh_seconds = fresh_seconds.min(time_stream(&mut fresh).1);
        indexed_seconds = indexed_seconds.min(time_stream(&mut indexed).1);
    }
    assert!(
        indexed_seconds * 5.0 <= fresh_seconds,
        "index-served stream should be >= 5x faster: indexed {indexed_seconds:.3}s vs fresh {fresh_seconds:.3}s ({:.1}x)",
        fresh_seconds / indexed_seconds
    );

    // ---------------------------------------------------------------- accuracy
    let mut fresh_overlap = 0.0;
    let mut indexed_overlap = 0.0;
    for source in 0..SCORED as VertexId {
        let exact = personalized_pagerank(
            &graph,
            &single_source_restart(graph.num_vertices(), source),
            0.15,
            200,
            1e-9,
        );
        fresh_overlap +=
            exact_identification(&fresh_responses[source as usize].estimate, &exact.scores, K);
        indexed_overlap += exact_identification(
            &indexed_responses[source as usize].estimate,
            &exact.scores,
            K,
        );
    }
    fresh_overlap /= SCORED as f64;
    indexed_overlap /= SCORED as f64;
    assert!(
        indexed_overlap >= fresh_overlap - 0.05,
        "matched accuracy: indexed top-{K} overlap {indexed_overlap:.3} fell more than \
         5% below the fresh-walk baseline {fresh_overlap:.3}"
    );

    // ------------------------------------------------------------- accounting
    // The economics behind the wall-clock pin, in deterministic work units: the fresh
    // stream samples every hop of every walk, while the indexed stream samples one
    // fresh hop per segment miss — at least an order of magnitude less sampling work,
    // independent of machine load.
    let stats = indexed.stats();
    assert!(
        stats.total_index_misses * 10 <= fresh.stats().total_walk_hops,
        "indexed sampling work {} should be well under a tenth of fresh {}",
        stats.total_index_misses,
        fresh.stats().total_walk_hops
    );
    assert!(stats.index_served_queries >= QUERIES as u64);
    assert!(stats.total_index_hits > 0);
    assert!(stats.index_build_seconds > 0.0);
    assert!(stats.amortized_index_build_seconds() <= stats.index_build_seconds / 10.0);
    for response in &indexed_responses {
        assert!(response.cost.index_served);
        assert_eq!(response.cost.network_bytes, 0);
        assert!((response.estimate.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}

#[test]
fn sessions_without_an_index_are_bit_identical_to_the_plain_path() {
    let graph = test_graph();
    let fw = FrogWildConfig {
        num_walkers: 20_000,
        iterations: 4,
        sync_probability: 0.7,
        ..FrogWildConfig::default()
    };
    let queries = [
        Query::TopK { k: K, config: fw },
        mc_query(3),
        Query::Ppr {
            source: 3,
            k: K,
            teleport_probability: 0.15,
            method: PprMethod::ForwardPush { epsilon: 1e-6 },
        },
    ];

    // Two sessions built identically, neither enabling the index: every response is
    // equal bit for bit — and the serial PPR answers equal the session-free serve_ppr
    // path, pinning that the subsystem is strictly additive when disabled.
    let mut a = Session::builder(&graph)
        .machines(8)
        .seed(5)
        .build()
        .unwrap();
    let mut b = Session::builder(&graph)
        .machines(8)
        .seed(5)
        .build()
        .unwrap();
    for query in &queries {
        let ra = a.query(query).unwrap();
        let rb = b.query(query).unwrap();
        assert_eq!(ra, rb);
        assert!(!ra.cost.index_served);
        assert_eq!(ra.cost.index_hits, 0);
        if let Query::Ppr {
            source,
            k,
            teleport_probability,
            method,
        } = *query
        {
            let direct =
                frogwild::session::serve_ppr(&graph, source, k, teleport_probability, method)
                    .unwrap();
            assert_eq!(ra.estimate, direct.estimate);
            assert_eq!(ra.ranking, direct.ranking);
        }
    }
    assert_eq!(a.stats().index_served_queries, 0);
    assert_eq!(a.stats().index_build_seconds, 0.0);
}

#[test]
fn index_builds_are_deterministic_and_respect_the_memory_budget() {
    let graph = test_graph();
    let base = WalkIndexConfig {
        segments_per_vertex: 6,
        segment_length: 5,
        seed: 42,
        ..WalkIndexConfig::default()
    };
    let (reference, _) =
        frogwild::walkindex::build_walk_index_standalone(&graph, 1, &base).unwrap();
    for (machines, parallel) in [(4usize, false), (8, true)] {
        let (other, report) = frogwild::walkindex::build_walk_index_standalone(
            &graph,
            machines,
            &WalkIndexConfig { parallel, ..base },
        )
        .unwrap();
        assert_eq!(reference, other, "machines={machines} parallel={parallel}");
        assert_eq!(report.machines, machines);
    }

    // A budget that only fits half the requested segments shrinks R, never L.
    let budgeted = WalkIndexConfig {
        memory_budget_bytes: base.estimated_bytes(graph.num_vertices(), 3),
        ..base
    };
    let (index, report) =
        frogwild::walkindex::build_walk_index_standalone(&graph, 4, &budgeted).unwrap();
    assert_eq!(report.effective_segments, 3);
    assert_eq!(index.segment_length(), 5);
    assert!(index.memory_bytes() <= budgeted.memory_budget_bytes);

    // And identical queries against identical indexes answer identically.
    let mut s1 = Session::builder(&graph)
        .machines(4)
        .seed(9)
        .walk_index(base)
        .build()
        .unwrap();
    let mut s2 = Session::builder(&graph)
        .machines(8)
        .seed(9)
        .walk_index(base)
        .build()
        .unwrap();
    let q = mc_query(17);
    let r1 = s1.query(&q).unwrap();
    let r2 = s2.query(&q).unwrap();
    // Different machine counts partition differently but generate identical segments,
    // so the served estimates (and every deterministic cost field) agree.
    assert_eq!(r1.estimate, r2.estimate);
    assert_eq!(r1.cost.index_hits, r2.cost.index_hits);
    assert_eq!(r1.cost.walk_hops, r2.cost.walk_hops);
}

#[test]
fn indexed_topk_finds_the_same_head_as_the_engine() {
    let graph = test_graph();
    let truth = exact_pagerank(&graph, 0.15, 100, 1e-10);
    let fw = FrogWildConfig {
        num_walkers: 100_000,
        iterations: 5,
        ..FrogWildConfig::default()
    };
    let mut indexed = Session::builder(&graph)
        .machines(8)
        .seed(2)
        .walk_index(WalkIndexConfig::default())
        .build()
        .unwrap();
    let response = indexed.query(&Query::TopK { k: 30, config: fw }).unwrap();
    assert!(response.cost.index_served);
    assert_eq!(response.cost.supersteps, 0);
    let mass = mass_captured(&response.estimate, &truth.scores, 30).normalized();
    assert!(mass > 0.8, "index-served top-k captured only {mass}");
}
