//! Cross-module integration: personalized PageRank, the Monte-Carlo estimator family,
//! confidence planning and the order-sensitive rank metrics, exercised together on
//! realistic heavy-tailed graphs.

use frogwild::confidence::{hoeffding_epsilon, plan_walkers};
use frogwild::montecarlo::{complete_path_pagerank, walkers_per_vertex_pagerank};
use frogwild::ppr::{forward_push_ppr, personalized_pagerank, single_source_restart};
use frogwild::prelude::*;
use frogwild::rank_metrics::{kendall_tau_top_k, ndcg_at_k, precision_at_k_curve};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn test_graph(n: usize, seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    frogwild_graph::generators::twitter_like(n, &mut rng)
}

#[test]
fn every_estimator_in_the_family_identifies_the_same_heavy_vertices() {
    // End-point MC, complete-path MC, walkers-per-vertex MC and the engine's FrogWild
    // run should all agree with exact PageRank on where the heavy vertices are; their
    // accuracy differs, their top sets should overlap substantially.
    let graph = test_graph(2_000, 11);
    let truth = exact_pagerank(&graph, 0.15, 200, 1e-12);
    let k = 50;
    let walkers = 40_000u64;
    let mut rng = SmallRng::seed_from_u64(5);

    let endpoint = serial_random_walk_pagerank(&graph, walkers, 6, 0.15, &mut rng);
    let complete = complete_path_pagerank(&graph, walkers, 6, 0.15, &mut rng);
    let per_vertex = walkers_per_vertex_pagerank(&graph, 2, 6, 0.15, &mut rng);
    let mut session = Session::builder(&graph)
        .machines(12)
        .seed(3)
        .build()
        .unwrap();
    let engine = session
        .query(&Query::TopK {
            k,
            config: FrogWildConfig {
                num_walkers: walkers,
                iterations: 6,
                sync_probability: 0.7,
                ..FrogWildConfig::default()
            },
        })
        .unwrap();

    for (name, estimate) in [
        ("endpoint", &endpoint),
        ("complete-path", &complete),
        ("walkers-per-vertex", &per_vertex),
        ("engine frogwild", &engine.estimate),
    ] {
        let mass = mass_captured(estimate, &truth.scores, k).normalized();
        assert!(mass > 0.8, "{name}: captured only {mass}");
        let ndcg = ndcg_at_k(estimate, &truth.scores, k);
        assert!(ndcg > 0.7, "{name}: ndcg {ndcg}");
    }

    // The complete-path estimator uses every visit, so its ordering of the true top-k
    // should be at least as consistent as the end-point estimator's.
    let tau_complete = kendall_tau_top_k(&complete, &truth.scores, k);
    let tau_endpoint = kendall_tau_top_k(&endpoint, &truth.scores, k);
    assert!(
        tau_complete > tau_endpoint - 0.15,
        "complete-path tau {tau_complete} vs endpoint tau {tau_endpoint}"
    );
}

#[test]
fn ppr_from_a_hub_looks_like_global_pagerank_but_from_a_leaf_does_not() {
    let graph = test_graph(1_500, 23);
    let truth = exact_pagerank(&graph, 0.15, 200, 1e-12);
    let n = graph.num_vertices();

    // The global top vertex: walks restarted there spread over its (large) out-neighbourhood.
    let hub = top_k(&truth.scores, 1)[0];
    // A low-degree vertex far from the core.
    let leaf = graph
        .vertices()
        .filter(|&v| graph.out_degree(v) >= 1)
        .min_by_key(|&v| graph.in_degree(v))
        .unwrap();

    let hub_ppr = personalized_pagerank(&graph, &single_source_restart(n, hub), 0.15, 200, 1e-10);
    let leaf_ppr = personalized_pagerank(&graph, &single_source_restart(n, leaf), 0.15, 200, 1e-10);

    // Both are distributions.
    assert!((hub_ppr.scores.iter().sum::<f64>() - 1.0).abs() < 1e-8);
    assert!((leaf_ppr.scores.iter().sum::<f64>() - 1.0).abs() < 1e-8);

    // The leaf's PPR concentrates on the leaf itself far more than the global PageRank
    // does; that is the whole point of personalization.
    assert!(leaf_ppr.scores[leaf as usize] > 10.0 * truth.scores[leaf as usize]);
    // The hub keeps being important in its own PPR vector too.
    assert!(hub_ppr.scores[hub as usize] >= 0.15 - 1e-9);
}

#[test]
fn forward_push_and_exact_ppr_agree_on_topk_across_sources() {
    let graph = test_graph(1_200, 31);
    let n = graph.num_vertices();
    for source in [0u32, 17, 255, 999] {
        let source = source % n as u32;
        let exact =
            personalized_pagerank(&graph, &single_source_restart(n, source), 0.15, 200, 1e-10);
        let push = forward_push_ppr(&graph, source, 0.15, 1e-7);
        let mass = mass_captured(&push.estimate, &exact.scores, 20).normalized();
        assert!(mass > 0.9, "source {source}: captured {mass}");
        let precision = precision_at_k_curve(&push.estimate, &exact.scores, &[1, 5, 10]);
        assert!(
            precision[0] > 0.99,
            "source {source}: top-1 missed ({precision:?})"
        );
    }
}

#[test]
fn planned_walker_budget_achieves_the_planned_accuracy() {
    // Close the loop: plan a budget from the true top-k mass, run the serial estimator
    // with that budget, and verify the captured-mass loss stays within the target.
    let graph = test_graph(1_500, 41);
    let truth = exact_pagerank(&graph, 0.15, 200, 1e-12);
    let k = 30;
    let optimal = mass_captured(&truth.scores, &truth.scores, k).optimal;
    let loss_target = 0.05;

    let plan = plan_walkers(k, graph.num_vertices(), optimal, loss_target, 0.1);
    // Keep the test fast: the Theorem 1 term is the binding one at this scale.
    let budget = plan.walkers_for_mass.min(400_000);
    let mut rng = SmallRng::seed_from_u64(7);
    let estimate = serial_random_walk_pagerank(&graph, budget, 8, 0.15, &mut rng);
    let achieved = mass_captured(&estimate, &truth.scores, k);
    assert!(
        achieved.loss() <= loss_target * 1.5,
        "planned loss {loss_target}, achieved loss {} with {budget} walkers",
        achieved.loss()
    );

    // And the uniform Hoeffding error at that budget is small compared to the top
    // vertex's mass, so the head of the ranking is resolvable.
    let eps = hoeffding_epsilon(budget, graph.num_vertices(), 0.1);
    let top_value = truth.scores[top_k(&truth.scores, 1)[0] as usize];
    assert!(
        eps < top_value,
        "hoeffding eps {eps} vs top mass {top_value}"
    );
}

#[test]
fn rank_metrics_track_the_papers_metrics_on_engine_output() {
    // On a real engine run, the order-sensitive metrics must tell the same qualitative
    // story as the paper's metrics: more walkers ⇒ no worse on every metric.
    let graph = test_graph(1_500, 53);
    let truth = exact_pagerank(&graph, 0.15, 200, 1e-12);
    let cluster = ClusterConfig::new(8, 4);
    let pg = frogwild::driver::partition_graph(&graph, &cluster);
    let k = 50;

    let small = frogwild::driver::run_frogwild_on(
        &pg,
        &FrogWildConfig {
            num_walkers: 2_000,
            iterations: 4,
            ..FrogWildConfig::default()
        },
    )
    .unwrap();
    let large = frogwild::driver::run_frogwild_on(
        &pg,
        &FrogWildConfig {
            num_walkers: 200_000,
            iterations: 4,
            ..FrogWildConfig::default()
        },
    )
    .unwrap();

    let mass_small = mass_captured(&small.estimate, &truth.scores, k).normalized();
    let mass_large = mass_captured(&large.estimate, &truth.scores, k).normalized();
    let ndcg_small = ndcg_at_k(&small.estimate, &truth.scores, k);
    let ndcg_large = ndcg_at_k(&large.estimate, &truth.scores, k);
    let tau_large = kendall_tau_top_k(&large.estimate, &truth.scores, k);

    assert!(
        mass_large >= mass_small - 0.02,
        "{mass_large} vs {mass_small}"
    );
    assert!(
        ndcg_large >= ndcg_small - 0.02,
        "{ndcg_large} vs {ndcg_small}"
    );
    assert!(tau_large > 0.3, "large-budget tau {tau_large}");
    assert!(mass_large > 0.9, "large-budget mass {mass_large}");
}
