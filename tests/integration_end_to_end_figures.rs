//! Miniature end-to-end versions of the paper's figure sweeps.
//!
//! Each test runs a scaled-down version of one figure's parameter sweep through the
//! public driver API and asserts the *shape* the paper reports (orderings, monotone
//! trends, crossovers), which is the property the full benchmark harness
//! (`cargo run -p frogwild-bench --bin figures`) reproduces at larger scale.

use frogwild::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct Workload {
    graph: DiGraph,
    truth: Vec<f64>,
}

fn workload(n: usize, seed: u64) -> Workload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let graph = frogwild_graph::generators::twitter_like(n, &mut rng);
    let truth = exact_pagerank(&graph, 0.15, 200, 1e-12).scores;
    Workload { graph, truth }
}

#[test]
fn figure1_shape_frogwild_dominates_cost_across_cluster_sizes() {
    // Fig 1(a)-(d): at every cluster size, FrogWild beats exact PR on per-iteration
    // time, total time, network and CPU; lowering ps reduces per-iteration time.
    let w = workload(1_500, 1);
    for machines in [12usize, 24] {
        let cluster = ClusterConfig::new(machines, 2);
        let pg = frogwild::driver::partition_graph(&w.graph, &cluster);

        let fw_full = frogwild::driver::run_frogwild_on(
            &pg,
            &FrogWildConfig {
                num_walkers: 40_000,
                iterations: 4,
                sync_probability: 1.0,
                ..FrogWildConfig::default()
            },
        )
        .unwrap();
        let fw_low = frogwild::driver::run_frogwild_on(
            &pg,
            &FrogWildConfig {
                num_walkers: 40_000,
                iterations: 4,
                sync_probability: 0.1,
                ..FrogWildConfig::default()
            },
        )
        .unwrap();
        let pr_exact = frogwild::driver::run_graphlab_pr_on(
            &pg,
            &PageRankConfig {
                max_iterations: 30,
                tolerance: 1e-9,
                ..PageRankConfig::default()
            },
        )
        .unwrap();

        assert!(
            fw_full.cost.simulated_seconds_per_iteration
                < pr_exact.cost.simulated_seconds_per_iteration,
            "machines={machines}"
        );
        assert!(
            fw_low.cost.simulated_seconds_per_iteration
                <= fw_full.cost.simulated_seconds_per_iteration,
            "machines={machines}: ps=0.1 should not be slower per iteration"
        );
        assert!(fw_full.cost.simulated_total_seconds < pr_exact.cost.simulated_total_seconds);
        assert!(fw_full.cost.network_bytes < pr_exact.cost.network_bytes);
        assert!(fw_full.cost.simulated_cpu_seconds < pr_exact.cost.simulated_cpu_seconds);
    }
}

#[test]
fn figure2_shape_accuracy_ordering_across_k() {
    // Fig 2: for every k, FrogWild at ps >= 0.7 beats 1-iteration PR; exact PR (the
    // reference itself) is an upper bound by construction.
    let w = workload(2_000, 3);
    let cluster = ClusterConfig::new(16, 4);
    let pg = frogwild::driver::partition_graph(&w.graph, &cluster);

    let fw = frogwild::driver::run_frogwild_on(
        &pg,
        &FrogWildConfig {
            num_walkers: 200_000,
            iterations: 4,
            sync_probability: 0.7,
            ..FrogWildConfig::default()
        },
    )
    .unwrap();
    let pr1 = frogwild::driver::run_graphlab_pr_on(&pg, &PageRankConfig::truncated(1)).unwrap();
    let pr2 = frogwild::driver::run_graphlab_pr_on(&pg, &PageRankConfig::truncated(2)).unwrap();

    for k in [30usize, 100, 300] {
        let fw_mass = mass_captured(&fw.estimate, &w.truth, k).normalized();
        let pr1_mass = mass_captured(&pr1.estimate, &w.truth, k).normalized();
        let pr2_mass = mass_captured(&pr2.estimate, &w.truth, k).normalized();
        // On the R-MAT stand-in the 1-iteration baseline is close to the true ranking
        // (weighted in-degree ≈ PageRank), so allow a small tolerance (EXPERIMENTS.md).
        assert!(
            fw_mass > pr1_mass - 0.03,
            "k={k}: FrogWild {fw_mass} vs 1-iter PR {pr1_mass}"
        );
        assert!(
            pr2_mass > pr1_mass - 0.02,
            "k={k}: 2-iter should not trail 1-iter"
        );
        assert!(fw_mass > 0.85, "k={k}: FrogWild accuracy {fw_mass}");
    }
}

#[test]
fn figure3_shape_accuracy_cost_tradeoff() {
    // Fig 3/4: within the FrogWild family, spending more network (higher ps) buys more
    // accuracy; exact PR sits at the high-cost high-accuracy corner.
    let w = workload(1_500, 5);
    let cluster = ClusterConfig::new(24, 6);
    let pg = frogwild::driver::partition_graph(&w.graph, &cluster);
    let k = 100;

    let mut points: Vec<(f64, u64)> = Vec::new(); // (accuracy, bytes) for increasing ps
    for ps in [0.1, 0.4, 1.0] {
        let report = frogwild::driver::run_frogwild_on(
            &pg,
            &FrogWildConfig {
                num_walkers: 150_000,
                iterations: 4,
                sync_probability: ps,
                ..FrogWildConfig::default()
            },
        )
        .unwrap();
        points.push((
            mass_captured(&report.estimate, &w.truth, k).normalized(),
            report.cost.network_bytes,
        ));
    }
    // network strictly increases with ps
    assert!(points[0].1 < points[1].1 && points[1].1 < points[2].1);
    // accuracy does not get worse (up to small noise) as ps rises
    assert!(points[2].0 >= points[0].0 - 0.03);

    let pr_exact = frogwild::driver::run_graphlab_pr_on(
        &pg,
        &PageRankConfig {
            max_iterations: 30,
            tolerance: 1e-9,
            ..PageRankConfig::default()
        },
    )
    .unwrap();
    let exact_mass = mass_captured(&pr_exact.estimate, &w.truth, k).normalized();
    assert!(exact_mass >= points[2].0 - 1e-9);
    assert!(pr_exact.cost.network_bytes > points[2].1);
}

#[test]
fn figure6_shape_livejournal_walker_and_iteration_sweeps() {
    // Fig 6: on the LiveJournal-shaped graph, accuracy improves (weakly) with more
    // walkers and more iterations, while total time grows with both.
    let mut rng = SmallRng::seed_from_u64(7);
    let graph = frogwild_graph::generators::livejournal_like(2_000, &mut rng);
    let truth = exact_pagerank(&graph, 0.15, 200, 1e-12).scores;
    let cluster = ClusterConfig::new(20, 8);
    let pg = frogwild::driver::partition_graph(&graph, &cluster);
    let k = 100;

    let run = |walkers: u64, iterations: usize| {
        let r = frogwild::driver::run_frogwild_on(
            &pg,
            &FrogWildConfig {
                num_walkers: walkers,
                iterations,
                sync_probability: 0.7,
                ..FrogWildConfig::default()
            },
        )
        .unwrap();
        (
            mass_captured(&r.estimate, &truth, k).normalized(),
            r.cost.simulated_total_seconds,
        )
    };

    let (acc_small, time_small) = run(10_000, 4);
    let (acc_large, time_large) = run(160_000, 4);
    assert!(
        acc_large >= acc_small - 0.02,
        "walker sweep: {acc_small} -> {acc_large}"
    );
    assert!(time_large >= time_small, "time should grow with walkers");

    let (acc_2, _) = run(80_000, 2);
    let (acc_5, time_5) = run(80_000, 5);
    assert!(acc_5 >= acc_2 - 0.02, "iteration sweep: {acc_2} -> {acc_5}");
    assert!(time_5 > 0.0);
}

#[test]
fn figure8_shape_network_grows_linearly_with_walkers() {
    let mut rng = SmallRng::seed_from_u64(9);
    let graph = frogwild_graph::generators::livejournal_like(3_000, &mut rng);
    let cluster = ClusterConfig::new(20, 10);
    let pg = frogwild::driver::partition_graph(&graph, &cluster);

    let bytes = |walkers: u64| {
        frogwild::driver::run_frogwild_on(
            &pg,
            &FrogWildConfig {
                num_walkers: walkers,
                iterations: 4,
                sync_probability: 1.0,
                ..FrogWildConfig::default()
            },
        )
        .unwrap()
        .cost
        .network_bytes as f64
    };
    let series: Vec<f64> = [1_000u64, 2_000, 4_000].iter().map(|&w| bytes(w)).collect();
    assert!(series[0] < series[1] && series[1] < series[2]);
    // Roughly linear: doubling walkers should not much more than double the bytes.
    let ratio1 = series[1] / series[0];
    let ratio2 = series[2] / series[1];
    assert!(ratio1 > 1.2 && ratio1 < 2.8, "ratio1 {ratio1}");
    assert!(ratio2 > 1.2 && ratio2 < 2.8, "ratio2 {ratio2}");
}
