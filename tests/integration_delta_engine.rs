//! Integration pins for the delta-gated, frontier-scheduled executor.
//!
//! The fingerprints below were captured from the one-thread-per-machine,
//! phase-barrier executor that preceded the frontier refactor. They freeze the
//! refactor's two contracts:
//!
//! * `tolerance = 0` (and every worker-pool/batch configuration) reproduces the old
//!   executor **bit-for-bit**, and
//! * the executor-level delta gate reproduces the old program-level
//!   `needs_scatter`-on-tolerance gating exactly at a *positive* tolerance too
//!   (the `pr-tol1e3` pin below ran with GraphLab-style dynamic scheduling).
//!
//! On top of the pins, the delta gate must actually pay for itself: on a ~100k-edge
//! power-law graph, gated PageRank does less than half the superstep work (scatter
//! ops + routed messages) of the ungated run at matched top-20 accuracy.

use frogwild::driver::RunReport;
use frogwild::prelude::*;
use frogwild_graph::generators::{livejournal_like, twitter_like};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-sensitive fold of the exact f64 bit patterns of an estimate.
fn fingerprint(estimate: &[f64]) -> u64 {
    let mut acc = 0x243F_6A88_85A3_08D3u64;
    for &x in estimate {
        acc = splitmix64(acc ^ x.to_bits());
    }
    acc
}

/// Total superstep work the delta gate is meant to reduce.
fn superstep_work(report: &RunReport) -> u64 {
    report.metrics.total_scatter_ops() + report.cost.routed_messages
}

fn frogwild_base() -> FrogWildConfig {
    FrogWildConfig {
        num_walkers: 50_000,
        iterations: 4,
        sync_probability: 0.7,
        ..FrogWildConfig::default()
    }
}

fn twitter_layout() -> frogwild_engine::PartitionedGraph {
    let mut rng = SmallRng::seed_from_u64(5);
    let graph = twitter_like(5_000, &mut rng);
    partition_graph(&graph, &ClusterConfig::new(16, 9))
}

#[test]
fn tolerance_zero_reproduces_the_pre_refactor_executor_bit_for_bit() {
    let pg = twitter_layout();

    let ps07 = run_frogwild_on(&pg, &frogwild_base()).unwrap();
    assert_eq!(fingerprint(&ps07.estimate), 0xc498_2688_7c36_ed28);
    assert_eq!(ps07.cost.network_bytes, 1_192_472);
    assert_eq!(ps07.cost.network_messages, 49_012);
    assert_eq!(ps07.metrics.total_ops(), 390_050);
    assert_eq!(ps07.metrics.total_scatter_ops(), 374_192);
    assert_eq!(ps07.cost.supersteps, 4);

    let ps10 = run_frogwild_on(
        &pg,
        &FrogWildConfig {
            sync_probability: 1.0,
            ..frogwild_base()
        },
    )
    .unwrap();
    assert_eq!(fingerprint(&ps10.estimate), 0x0ae2_b17a_bc8e_9a4d);
    assert_eq!(ps10.cost.network_bytes, 1_510_384);
    assert_eq!(ps10.cost.network_messages, 60_480);
    assert_eq!(ps10.metrics.total_ops(), 516_658);
}

#[test]
fn worker_pool_scheduling_reproduces_the_golden_fingerprints() {
    let pg = twitter_layout();
    let parallel = FrogWildConfig {
        parallel: true,
        ..frogwild_base()
    };
    for scheduling in [
        Scheduling::default(),
        Scheduling::with_workers(2),
        Scheduling {
            workers: 3,
            batch_size: 33,
        },
        Scheduling {
            workers: 8,
            batch_size: 1,
        },
    ] {
        let report = run_frogwild_scheduled(&pg, &parallel, &scheduling).unwrap();
        assert_eq!(
            fingerprint(&report.estimate),
            0xc498_2688_7c36_ed28,
            "{scheduling:?}"
        );
        assert_eq!(report.cost.network_bytes, 1_192_472);
        assert_eq!(report.cost.network_messages, 49_012);
    }
}

#[test]
fn pagerank_golden_pins_hold_under_executor_gating() {
    let mut rng = SmallRng::seed_from_u64(7);
    let graph = livejournal_like(3_000, &mut rng);
    let pg = partition_graph(&graph, &ClusterConfig::new(8, 11));

    // Positive tolerance: the executor's `delta <= tolerance` gate must make exactly
    // the decisions the old program-level `needs_scatter` made with the same 1e-3.
    let gated = run_graphlab_pr_on(
        &pg,
        &PageRankConfig {
            max_iterations: 25,
            tolerance: 1e-3,
            ..PageRankConfig::default()
        },
    )
    .unwrap();
    assert_eq!(fingerprint(&gated.estimate), 0x361f_a0c0_da1e_e8ba);
    assert_eq!(gated.cost.network_bytes, 3_131_664);
    assert_eq!(gated.cost.network_messages, 180_574);
    assert_eq!(gated.metrics.total_ops(), 1_250_444);
    assert_eq!(gated.metrics.total_scatter_ops(), 494_315);
    assert_eq!(gated.cost.supersteps, 25);
    assert!(gated.cost.skipped_scatters > 0);

    // Zero tolerance (the truncated preset): no gating at all.
    let truncated = run_graphlab_pr_on(&pg, &PageRankConfig::truncated(2)).unwrap();
    assert_eq!(fingerprint(&truncated.estimate), 0x8575_973d_04cf_b9c2);
    assert_eq!(truncated.cost.network_bytes, 477_916);
    assert_eq!(truncated.cost.network_messages, 27_367);
    assert_eq!(truncated.metrics.total_ops(), 174_029);
    assert_eq!(truncated.cost.supersteps, 2);
}

#[test]
fn delta_gating_halves_superstep_work_at_matched_topk_accuracy() {
    // ~100k-edge power-law graph (102,410 edges).
    let mut rng = SmallRng::seed_from_u64(42);
    let graph = twitter_like(3_000, &mut rng);
    assert!(graph.num_edges() >= 100_000);
    let pg = partition_graph(&graph, &ClusterConfig::new(16, 9));

    let iterations = 30;
    let ungated = run_graphlab_pr_on(
        &pg,
        &PageRankConfig {
            max_iterations: iterations,
            tolerance: 0.0,
            ..PageRankConfig::default()
        },
    )
    .unwrap();
    let gated = run_graphlab_pr_on(
        &pg,
        &PageRankConfig {
            max_iterations: iterations,
            tolerance: 1e-3,
            ..PageRankConfig::default()
        },
    )
    .unwrap();

    // >= 2x less total superstep work (scatter ops + routed messages)...
    let (gated_work, ungated_work) = (superstep_work(&gated), superstep_work(&ungated));
    assert!(
        ungated_work >= 2 * gated_work,
        "work reduction below 2x: gated {gated_work} vs ungated {ungated_work}"
    );
    assert!(gated.cost.skipped_scatters > 0);
    assert!(gated.cost.routed_messages < ungated.cost.routed_messages);
    // ... and a shrinking frontier.
    assert!(gated.cost.active_vertices < ungated.cost.active_vertices);

    // ... at matched top-20 accuracy against exact PageRank.
    let exact = exact_pagerank(&graph, 0.15, 200, 1e-13);
    let k = 20;
    let gated_mass = mass_captured(&gated.estimate, &exact.scores, k).normalized();
    let ungated_mass = mass_captured(&ungated.estimate, &exact.scores, k).normalized();
    assert!(gated_mass > 0.99, "gated top-{k} mass {gated_mass}");
    assert!(
        gated_mass >= ungated_mass - 1e-3,
        "gating lost accuracy: {gated_mass} vs {ungated_mass}"
    );
    assert_eq!(
        exact_identification(&gated.estimate, &exact.scores, k),
        exact_identification(&ungated.estimate, &exact.scores, k)
    );
}
