//! Quickstart: build one `Session` over a synthetic social graph, then serve FrogWild
//! and baseline PageRank queries against it and compare accuracy and cost.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use frogwild::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<()> {
    // 1. Build (or load) a directed graph. Here: a scaled-down graph with the
    //    LiveJournal graph's shape. `frogwild_graph::io::read_edge_list_file` loads the
    //    real SNAP datasets in exactly the same representation.
    let mut rng = SmallRng::seed_from_u64(42);
    let graph = frogwild_graph::generators::livejournal_like(20_000, &mut rng);
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Build the session: the graph is partitioned over a simulated 16-machine
    //    cluster exactly once (the paper uses 12-24 machines on AWS). Every query
    //    below reuses this layout.
    let mut session = Session::builder(&graph).machines(16).seed(7).build()?;

    // 3. Query FrogWild: 100k walkers, 4 iterations, 70% mirror synchronization.
    let k = 100;
    let config = FrogWildConfig {
        num_walkers: 100_000,
        iterations: 4,
        sync_probability: 0.7,
        ..FrogWildConfig::default()
    };
    let frogwild_response = session.query(&Query::TopK { k, config })?;

    // 4. Query the baselines on the same session: exact and 2-iteration PageRank.
    let exact_response = session.query(&Query::Pagerank {
        k,
        config: PageRankConfig::exact(),
    })?;
    let truncated_response = session.query(&Query::Pagerank {
        k,
        config: PageRankConfig::truncated(2),
    })?;

    // 5. Score everything against the serial exact PageRank (the ground truth π).
    let truth = exact_pagerank(&graph, 0.15, 200, 1e-12);

    println!(
        "\n{:<28} {:>10} {:>14} {:>14} {:>12}",
        "algorithm", "mass@100", "sim time (s)", "net bytes", "supersteps"
    );
    for response in [&frogwild_response, &truncated_response, &exact_response] {
        let accuracy = mass_captured(&response.estimate, &truth.scores, k);
        println!(
            "{:<28} {:>10.4} {:>14.4} {:>14} {:>12}",
            response
                .algorithm
                .split(" walkers")
                .next()
                .unwrap_or(&response.algorithm),
            accuracy.normalized(),
            response.cost.simulated_seconds,
            response.cost.network_bytes,
            response.cost.supersteps
        );
    }

    // 6. Print the estimated top-10 vertices with their exact ranks for a sanity check.
    println!("\ntop-10 vertices according to FrogWild (exact PageRank in parentheses):");
    let exact_top: Vec<VertexId> = top_k(&truth.scores, 10);
    for (rank, (v, _)) in frogwild_response.ranking.iter().take(10).enumerate() {
        let exact_position = exact_top.iter().position(|&u| u == *v);
        println!(
            "  #{:<3} vertex {:<8} π = {:.6} {}",
            rank + 1,
            v,
            truth.scores[*v as usize],
            match exact_position {
                Some(p) => format!("(exact rank #{})", p + 1),
                None => "(outside exact top-10)".to_string(),
            }
        );
    }

    // 7. The session tracked the whole stream: three queries, one partitioning.
    let stats = session.stats();
    println!(
        "\nsession: {} queries served, partitioned once in {:.3}s ({:.3}s amortized per query)",
        stats.queries_served,
        stats.partition_seconds,
        stats.amortized_partition_seconds()
    );
    Ok(())
}
