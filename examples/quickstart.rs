//! Quickstart: estimate the top PageRank vertices of a synthetic social graph with
//! FrogWild and compare against exact PageRank and the truncated-PageRank baseline.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use frogwild::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // 1. Build (or load) a directed graph. Here: a scaled-down graph with the
    //    LiveJournal graph's shape. `frogwild_graph::io::read_edge_list_file` loads the
    //    real SNAP datasets in exactly the same representation.
    let mut rng = SmallRng::seed_from_u64(42);
    let graph = frogwild_graph::generators::livejournal_like(20_000, &mut rng);
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Describe the simulated cluster (the paper uses 12-24 machines on AWS).
    let cluster = ClusterConfig::new(16, 7);

    // 3. Run FrogWild: 100k walkers, 4 iterations, 70% mirror synchronization.
    let config = FrogWildConfig {
        num_walkers: 100_000,
        iterations: 4,
        sync_probability: 0.7,
        ..FrogWildConfig::default()
    };
    let frogwild_report = run_frogwild(&graph, &cluster, &config);

    // 4. Run the baselines on the same cluster: exact PageRank and 2-iteration PageRank.
    let exact_report = run_graphlab_pr(&graph, &cluster, &PageRankConfig::exact());
    let truncated_report = run_graphlab_pr(&graph, &cluster, &PageRankConfig::truncated(2));

    // 5. Score everything against the serial exact PageRank (the ground truth π).
    let truth = exact_pagerank(&graph, 0.15, 200, 1e-12);
    let k = 100;

    println!("\n{:<28} {:>10} {:>14} {:>14} {:>12}", "algorithm", "mass@100", "sim time (s)", "net bytes", "supersteps");
    for report in [&frogwild_report, &truncated_report, &exact_report] {
        let accuracy = mass_captured(&report.estimate, &truth.scores, k);
        println!(
            "{:<28} {:>10.4} {:>14.4} {:>14} {:>12}",
            report.algorithm.split(" walkers").next().unwrap_or(&report.algorithm),
            accuracy.normalized(),
            report.cost.simulated_total_seconds,
            report.cost.network_bytes,
            report.cost.supersteps
        );
    }

    // 6. Print the estimated top-10 vertices with their exact ranks for a sanity check.
    println!("\ntop-10 vertices according to FrogWild (exact PageRank in parentheses):");
    let exact_top: Vec<VertexId> = top_k(&truth.scores, 10);
    for (rank, v) in frogwild_report.top_k(10).into_iter().enumerate() {
        let exact_position = exact_top.iter().position(|&u| u == v);
        println!(
            "  #{:<3} vertex {:<8} π = {:.6} {}",
            rank + 1,
            v,
            truth.scores[v as usize],
            match exact_position {
                Some(p) => format!("(exact rank #{})", p + 1),
                None => "(outside exact top-10)".to_string(),
            }
        );
    }
}
