//! The walk-index amortization story: serve a PPR query stream from precomputed
//! walk segments instead of fresh Monte-Carlo walks.
//!
//! Two sessions over the same ~100k-edge Twitter-shaped graph answer the same stream
//! of 100 personalized-PageRank queries:
//!
//! * the **fresh** session has no index — every query pays the full Monte-Carlo cost,
//!   sampling every hop of every walk;
//! * the **indexed** session precomputed R segments of L hops per vertex at build time
//!   and answers each query PowerWalk-style: a coarse forward push, then stitched
//!   walks over cached segments, scored with the complete-path estimator so a few
//!   thousand cached walks match tens of thousands of fresh ones.
//!
//! The demo measures end-to-end latency of both streams and scores both against exact
//! PPR on a sample of sources, demonstrating the acceptance claim: **at matched top-20
//! accuracy, the indexed stream is at least 5x faster**, and the one-time index build
//! cost amortizes away over the stream.
//!
//! Run with: `cargo run --release --example walk_index`

use frogwild::ppr::{personalized_pagerank, single_source_restart};
use frogwild::prelude::*;
use frogwild::session::PprMethod;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

/// Queries in the stream.
const QUERIES: usize = 100;
/// Sources scored against exact PPR (a subsample: exact PPR is the expensive part).
const SCORED: usize = 10;
/// Top-k size for the accuracy comparison.
const K: usize = 20;
/// Walkers of the fresh Monte-Carlo baseline.
const MC_WALKERS: u64 = 40_000;

fn main() -> Result<()> {
    let mut rng = SmallRng::seed_from_u64(7);
    let graph = frogwild_graph::generators::twitter_like(3_000, &mut rng);
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // The same query method for both sessions: the indexed session transparently
    // serves it from its walk index, the fresh one samples every hop.
    let sources: Vec<VertexId> = (0..QUERIES as VertexId).collect();
    let query = |source: VertexId| Query::Ppr {
        source,
        k: K,
        teleport_probability: 0.15,
        method: PprMethod::MonteCarlo {
            walkers: MC_WALKERS,
            max_steps: 64,
            seed: 11,
        },
    };

    let time_stream = |session: &mut Session<'_>| -> Result<(Vec<Response>, f64)> {
        let started = Instant::now();
        let responses = sources
            .iter()
            .map(|&s| session.query(&query(s)))
            .collect::<Result<_>>()?;
        Ok((responses, started.elapsed().as_secs_f64()))
    };

    // ---------------------------------------------------------------- fresh stream
    let mut fresh = Session::builder(&graph).machines(8).seed(1).build()?;
    let (fresh_responses, mut fresh_seconds) = time_stream(&mut fresh)?;

    // --------------------------------------------------------------- indexed stream
    let index_config = WalkIndexConfig::default();
    let mut indexed = Session::builder(&graph)
        .machines(8)
        .seed(1)
        .walk_index(index_config)
        .build()?;
    let report = *indexed.walk_index_report().expect("index was built");
    let (indexed_responses, mut indexed_seconds) = time_stream(&mut indexed)?;

    // Wall-clock is load-sensitive: if background noise ate the margin, re-measure
    // both streams once (responses are deterministic) and keep the minimum each.
    if indexed_seconds * 5.0 > fresh_seconds {
        fresh_seconds = fresh_seconds.min(time_stream(&mut fresh)?.1);
        indexed_seconds = indexed_seconds.min(time_stream(&mut indexed)?.1);
    }

    // ------------------------------------------------------------------- accuracy
    let mut fresh_overlap = 0.0;
    let mut indexed_overlap = 0.0;
    for &source in sources.iter().take(SCORED) {
        let exact = personalized_pagerank(
            &graph,
            &single_source_restart(graph.num_vertices(), source),
            0.15,
            200,
            1e-12,
        );
        fresh_overlap +=
            exact_identification(&fresh_responses[source as usize].estimate, &exact.scores, K);
        indexed_overlap += exact_identification(
            &indexed_responses[source as usize].estimate,
            &exact.scores,
            K,
        );
    }
    fresh_overlap /= SCORED as f64;
    indexed_overlap /= SCORED as f64;

    // -------------------------------------------------------------------- report
    let stats = indexed.stats();
    println!("\n{QUERIES}-query PPR stream, top-{K} accuracy scored on {SCORED} sources:");
    println!(
        "  fresh Monte-Carlo : {fresh_seconds:.3}s total ({:.2}ms/query), top-{K} overlap {fresh_overlap:.3}",
        1e3 * fresh_seconds / QUERIES as f64
    );
    println!(
        "  walk-index served : {indexed_seconds:.3}s total ({:.2}ms/query), top-{K} overlap {indexed_overlap:.3}",
        1e3 * indexed_seconds / QUERIES as f64
    );
    println!(
        "  speedup: {:.1}x (index build {:.3}s, amortized to {:.4}s/query over the stream)",
        fresh_seconds / indexed_seconds,
        report.build_seconds,
        stats.amortized_index_build_seconds(),
    );
    println!(
        "  index: {}x{}-hop segments/vertex, {:.1} MiB arena, hit rate {:.1}% over {} segment requests",
        report.effective_segments,
        report.segment_length,
        report.arena_bytes as f64 / (1024.0 * 1024.0),
        100.0 * stats.index_hit_rate(),
        stats.total_index_hits + stats.total_index_misses,
    );
    println!(
        "  work: fresh sampled {} hops; indexed covered {} hops with only {} sampled fresh",
        fresh.stats().total_walk_hops,
        stats.total_walk_hops,
        stats.total_index_misses,
    );

    assert!(
        indexed_seconds * 5.0 <= fresh_seconds,
        "expected >= 5x speedup, got {:.1}x",
        fresh_seconds / indexed_seconds
    );
    assert!(
        indexed_overlap >= fresh_overlap - 0.05,
        "indexed accuracy {indexed_overlap:.3} fell more than 5% below fresh {fresh_overlap:.3}"
    );
    println!("\nacceptance: >=5x faster at matched top-{K} accuracy ✓");
    Ok(())
}
