//! Key-user identification in an online social network (the paper's third motivating
//! application, after Heidemann et al.).
//!
//! To predict which users will stay active, [19] ranks users by PageRank over a
//! *mixture* of the connectivity graph (who follows whom) and the activity graph (who
//! interacted with whom recently). The activity graph changes constantly, so the
//! ranking must be recomputed often — and only the top slice of users is ever acted on,
//! which again is FrogWild's regime.
//!
//! This example builds both graphs synthetically, mixes them with a configurable
//! weight, and compares FrogWild against truncated PageRank on the mixed graph across a
//! sweep of cluster sizes (the shape of the paper's Figure 1).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example osn_churn
//! ```

use frogwild::prelude::*;
use frogwild_graph::generators::{rmat, RmatParams};
use frogwild_graph::{DanglingPolicy, GraphBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Users in the synthetic network.
const USERS: usize = 40_000;
/// Fraction of users active in the recent window.
const ACTIVE_FRACTION: f64 = 0.3;
/// Weight of the activity graph in the mixture (the rest comes from connectivity).
const ACTIVITY_WEIGHT: f64 = 0.6;

/// Builds the mixed connectivity + activity graph.
///
/// Connectivity: a heavy-tailed follower graph (R-MAT). Activity: interactions among a
/// random 30% subset of users, biased towards users that are already well connected
/// (active users mention popular accounts). The mixture duplicates edges from each
/// source in proportion to its weight, which is how a weighted PageRank is realised on
/// an unweighted engine.
fn build_mixed_graph(rng: &mut SmallRng) -> DiGraph {
    let connectivity = rmat(
        USERS,
        RmatParams {
            edge_factor: 12.0,
            ..RmatParams::default()
        },
        rng,
    );

    // Activity edges: active users interact with a few targets, preferring high
    // in-degree accounts from the connectivity graph.
    let mut active_users: Vec<u32> = (0..USERS as u32)
        .filter(|_| rng.gen::<f64>() < ACTIVE_FRACTION)
        .collect();
    if active_users.is_empty() {
        active_users.push(0);
    }
    let popular: Vec<u32> = {
        let mut by_in_degree: Vec<u32> = (0..USERS as u32).collect();
        by_in_degree.sort_unstable_by_key(|&v| std::cmp::Reverse(connectivity.in_degree(v)));
        by_in_degree.truncate(USERS / 100);
        by_in_degree
    };

    let connectivity_copies = (((1.0 - ACTIVITY_WEIGHT) * 10.0).round() as usize).max(1);
    let activity_copies = ((ACTIVITY_WEIGHT * 10.0).round() as usize).max(1);

    let mut builder = GraphBuilder::new(USERS).with_edge_capacity(
        connectivity.num_edges() * connectivity_copies + active_users.len() * 8,
    );
    for (src, dst) in connectivity.edges() {
        for _ in 0..connectivity_copies {
            builder.add_edge_unchecked(src, dst);
        }
    }
    for &user in &active_users {
        for _ in 0..4 {
            let target = if rng.gen::<f64>() < 0.5 {
                popular[rng.gen_range(0..popular.len())]
            } else {
                active_users[rng.gen_range(0..active_users.len())]
            };
            if target != user {
                for _ in 0..activity_copies {
                    builder.add_edge_unchecked(user, target);
                }
            }
        }
    }
    builder
        .dangling_policy(DanglingPolicy::SelfLoop)
        .build()
        .expect("valid mixed graph")
}

fn main() -> Result<()> {
    let mut rng = SmallRng::seed_from_u64(77);
    let graph = build_mixed_graph(&mut rng);
    println!(
        "mixed connectivity/activity graph: {} users, {} weighted edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let truth = exact_pagerank(&graph, 0.15, 150, 1e-10);
    let k = 200; // the "key users" a marketing team would actually target

    println!(
        "\n{:<10} {:<22} {:>10} {:>14} {:>16} {:>14}",
        "machines", "algorithm", "mass@200", "iter time (s)", "net bytes", "cpu (s)"
    );
    for machines in [12usize, 16, 20, 24] {
        // One session per cluster size: both algorithms below share its layout.
        let mut session = Session::builder(&graph)
            .machines(machines)
            .seed(5)
            .build()?;

        let frogwild_response = session.query(&Query::TopK {
            k,
            config: FrogWildConfig {
                num_walkers: 200_000,
                iterations: 4,
                sync_probability: 0.4,
                ..FrogWildConfig::default()
            },
        })?;
        let pr_response = session.query(&Query::Pagerank {
            k,
            config: PageRankConfig::truncated(2),
        })?;

        for response in [&frogwild_response, &pr_response] {
            let mass = mass_captured(&response.estimate, &truth.scores, k);
            println!(
                "{:<10} {:<22} {:>10.4} {:>14.4} {:>16} {:>14.4}",
                machines,
                response
                    .algorithm
                    .split(" walkers")
                    .next()
                    .unwrap_or(&response.algorithm),
                mass.normalized(),
                response.cost.simulated_seconds / response.cost.supersteps.max(1) as f64,
                response.cost.network_bytes,
                response.cost.simulated_cpu_seconds,
            );
        }
    }

    println!(
        "\nInterpretation: across cluster sizes FrogWild keeps per-iteration time and network \
         traffic well below even the 2-iteration PageRank baseline at comparable top-200 \
         accuracy — the behaviour the paper's Figure 1 reports for the Twitter graph, here on a \
         churn-prediction workload built from a connectivity/activity mixture."
    );
    Ok(())
}
