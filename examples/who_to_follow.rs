//! "Who to follow": personalized-PageRank recommendations on a follower graph.
//!
//! The FrogWild paper positions its global top-k estimator against the Personalized
//! PageRank (PPR) line of work (Section 2.4). This example shows the two living side by
//! side in one application, the way a social-network recommendation pipeline would use
//! them:
//!
//! 1. the *global* top-k (FrogWild on the simulated cluster) supplies the "popular
//!    accounts" shelf shown to everyone;
//! 2. a *personalized* ranking (forward-push PPR from one user) supplies the
//!    "because you follow…" shelf, computed locally in microseconds because forward
//!    push only touches the source's neighbourhood.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example who_to_follow
//! ```

use frogwild::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<()> {
    // A scaled-down follower graph with the Twitter graph's shape.
    let mut rng = SmallRng::seed_from_u64(2026);
    let graph = frogwild_graph::generators::twitter_like(15_000, &mut rng);
    println!(
        "follower graph: {} users, {} follow edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // One session serves both shelves: the engine-backed global ranking and the
    // serial personalized queries share the same service object.
    let mut session = Session::builder(&graph).machines(12).seed(9).build()?;

    // ---------------------------------------------------------------- global shelf
    let report = session.query(&Query::TopK {
        k: 10,
        config: FrogWildConfig {
            num_walkers: 120_000,
            iterations: 4,
            sync_probability: 0.7,
            ..FrogWildConfig::default()
        },
    })?;
    println!(
        "\nglobal \"popular accounts\" shelf (FrogWild, {} bytes of network traffic):",
        report.cost.network_bytes
    );
    for (rank, (v, mass)) in report.ranking.iter().enumerate() {
        println!(
            "  #{:<2} account {:<8} estimated mass {:.5}",
            rank + 1,
            v,
            mass
        );
    }

    // ---------------------------------------------------------------- personal shelf
    // Pick a user with a handful of follows so the personalized list is interesting.
    let user = graph
        .vertices()
        .find(|&v| (3..20).contains(&graph.out_degree(v)))
        .expect("the generator always produces mid-degree users");
    let push = session.query(&Query::Ppr {
        source: user,
        k: 30,
        teleport_probability: 0.15,
        method: PprMethod::ForwardPush { epsilon: 1e-6 },
    })?;
    if let ResponseDetail::Ppr {
        pushes, residual, ..
    } = push.detail
    {
        println!(
            "\npersonal \"because you follow…\" shelf for user {user} \
             ({pushes} pushes, residual mass {residual:.4}):"
        );
    }
    let mut recommended = 0usize;
    for v in push.top_vertices() {
        // Skip the user themself and accounts they already follow.
        if v == user || graph.has_edge(user, v) {
            continue;
        }
        recommended += 1;
        println!(
            "  #{:<2} account {:<8} ppr {:.6}",
            recommended, v, push.estimate[v as usize]
        );
        if recommended == 10 {
            break;
        }
    }

    // ---------------------------------------------------------------- sanity check
    // Forward push is an approximation; verify its top picks against exact PPR
    // served by the same session.
    let exact = session.query(&Query::Ppr {
        source: user,
        k: 20,
        teleport_probability: 0.15,
        method: PprMethod::PowerIteration {
            max_iterations: 200,
            tolerance: 1e-10,
        },
    })?;
    let agreement = exact_identification(&push.estimate, &exact.estimate, 20);
    println!(
        "\nforward push agrees with exact personalized PageRank on {:.0}% of the top-20",
        agreement * 100.0
    );
    Ok(())
}
