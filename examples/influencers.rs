//! Growing loyalty of influential customers (the paper's first motivating application).
//!
//! A telecom company wants to find its top-k most influential customers from the call
//! graph so it can invest a limited retention budget where it matters most. The call
//! graph changes daily, so the full PageRank vector is never needed — only a quick,
//! cheap estimate of the heavy hitters.
//!
//! This example builds a synthetic call graph with a planted "influencer" structure
//! (a small set of accounts that receive calls from everywhere), runs FrogWild at
//! several synchronization levels, and reports how much of the influencer set each
//! setting recovers and at what network cost.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example influencers
//! ```

use frogwild::prelude::*;
use frogwild_graph::{DanglingPolicy, GraphBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of customers in the synthetic call graph.
const CUSTOMERS: usize = 30_000;
/// Number of planted influencers.
const INFLUENCERS: usize = 40;
/// Calls placed per ordinary customer.
const CALLS_PER_CUSTOMER: usize = 12;

/// Builds a call graph: every customer calls a dozen random contacts, and a third of
/// all customers additionally call one of the planted influencers (support lines,
/// community organisers, popular businesses).
fn build_call_graph(rng: &mut SmallRng) -> DiGraph {
    let mut builder =
        GraphBuilder::new(CUSTOMERS).with_edge_capacity(CUSTOMERS * (CALLS_PER_CUSTOMER + 1));
    for customer in 0..CUSTOMERS as u32 {
        for _ in 0..CALLS_PER_CUSTOMER {
            let callee = rng.gen_range(0..CUSTOMERS) as u32;
            if callee != customer {
                builder.add_edge_unchecked(customer, callee);
            }
        }
        if rng.gen::<f64>() < 0.33 {
            let influencer = rng.gen_range(0..INFLUENCERS) as u32;
            if influencer != customer {
                builder.add_edge_unchecked(customer, influencer);
            }
        }
    }
    builder
        .dedup(true)
        .dangling_policy(DanglingPolicy::SelfLoop)
        .build()
        .expect("valid call graph")
}

fn main() -> Result<()> {
    let mut rng = SmallRng::seed_from_u64(2024);
    let graph = build_call_graph(&mut rng);
    println!(
        "call graph: {} customers, {} call edges, {} planted influencers",
        graph.num_vertices(),
        graph.num_edges(),
        INFLUENCERS
    );

    // Ground truth: exact PageRank on the call graph.
    let truth = exact_pagerank(&graph, 0.15, 200, 1e-12);
    let true_top: Vec<VertexId> = top_k(&truth.scores, INFLUENCERS);
    let planted_found = true_top
        .iter()
        .filter(|&&v| (v as usize) < INFLUENCERS)
        .count();
    println!(
        "exact PageRank already places {planted_found}/{INFLUENCERS} planted influencers in its top-{INFLUENCERS}"
    );

    // One session serves the whole sweep: the call graph is partitioned over the
    // 20-machine cluster once, and every query below reuses the layout.
    let mut session = Session::builder(&graph).machines(20).seed(11).build()?;
    println!(
        "\n{:<22} {:>12} {:>12} {:>14} {:>14}",
        "setting", "mass@40", "exact id@40", "net bytes", "sim time (s)"
    );

    // Sweep the synchronization probability like Figure 2 of the paper.
    for ps in [1.0, 0.7, 0.4, 0.1] {
        let config = FrogWildConfig {
            num_walkers: 150_000,
            iterations: 4,
            sync_probability: ps,
            ..FrogWildConfig::default()
        };
        let response = session.query(&Query::TopK {
            k: INFLUENCERS,
            config,
        })?;
        let mass = mass_captured(&response.estimate, &truth.scores, INFLUENCERS);
        let ident = exact_identification(&response.estimate, &truth.scores, INFLUENCERS);
        println!(
            "{:<22} {:>12.4} {:>12.4} {:>14} {:>14.4}",
            format!("FrogWild ps={ps}"),
            mass.normalized(),
            ident,
            response.cost.network_bytes,
            response.cost.simulated_seconds,
        );
    }

    // Baseline: the standard approach of running a couple of PageRank iterations.
    for iters in [1usize, 2] {
        let response = session.query(&Query::Pagerank {
            k: INFLUENCERS,
            config: PageRankConfig::truncated(iters),
        })?;
        let mass = mass_captured(&response.estimate, &truth.scores, INFLUENCERS);
        let ident = exact_identification(&response.estimate, &truth.scores, INFLUENCERS);
        println!(
            "{:<22} {:>12.4} {:>12.4} {:>14} {:>14.4}",
            format!("GraphLab PR {iters} iters"),
            mass.normalized(),
            ident,
            response.cost.network_bytes,
            response.cost.simulated_seconds,
        );
    }

    println!(
        "\nInterpretation: FrogWild reaches comparable accuracy to 2-iteration PageRank while \
         sending a fraction of the bytes, and lowering p_s trades a little accuracy for \
         proportionally less traffic — the paper's Figure 2/3 trade-off on a call-graph workload. \
         All six queries shared one partitioning ({:.3}s, amortized {:.3}s/query).",
        session.stats().partition_seconds,
        session.stats().amortized_partition_seconds(),
    );
    Ok(())
}
