//! Walker-budget planning: how many frogs does a target accuracy need?
//!
//! Remark 6 of the paper says the walker count should scale as `N = O(k / µ_k(π)²)` and
//! the iteration count as `O(log 1/µ_k(π))` — but µ_k(π) is exactly the quantity you do
//! not know before running anything. This example shows the workflow the `confidence`
//! module supports:
//!
//! 1. run a *cheap pilot* (few walkers) to get a rough estimate of the top-k mass;
//! 2. feed the pilot estimate into [`plan_walkers`] to size the real run;
//! 3. run the planned configuration and verify the per-vertex Wilson intervals and the
//!    achieved captured mass.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example walker_planning
//! ```

use frogwild::confidence::{separation_probability, wilson_interval};
use frogwild::prelude::*;
use frogwild::theory::recommended_iterations;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<()> {
    let mut rng = SmallRng::seed_from_u64(77);
    let graph = frogwild_graph::generators::livejournal_like(25_000, &mut rng);
    // The pilot and the planned run reuse one session layout — the workflow the
    // `Query::AutotunedTopK` variant automates in a single query.
    let mut session = Session::builder(&graph).machines(16).seed(5).build()?;
    let k = 50;
    println!(
        "graph: {} vertices, {} edges — target: top-{k}",
        graph.num_vertices(),
        graph.num_edges()
    );

    // ------------------------------------------------------------------ 1. pilot run
    let pilot_walkers = 10_000u64;
    let pilot = session.query(&Query::TopK {
        k,
        config: FrogWildConfig {
            num_walkers: pilot_walkers,
            iterations: 3,
            sync_probability: 1.0,
            ..FrogWildConfig::default()
        },
    })?;
    // The pilot's own estimate of how much mass the top-k holds.
    let pilot_mass: f64 = pilot.ranking.iter().map(|&(_, mass)| mass).sum();
    println!("\npilot ({pilot_walkers} walkers): estimated top-{k} mass ≈ {pilot_mass:.3}");

    // ------------------------------------------------------------------ 2. plan
    let plan = plan_walkers(k, graph.num_vertices(), pilot_mass.max(0.01), 0.05, 0.1);
    let iterations = recommended_iterations(0.15, pilot_mass.max(0.01)).clamp(3, 6);
    println!(
        "plan: Theorem-1 sampling term {} walkers, per-vertex frequency term {} walkers",
        plan.walkers_for_mass, plan.walkers_for_frequency
    );
    let budget = plan.walkers_for_mass.clamp(50_000, 2_000_000);
    println!("planned run: {budget} walkers, {iterations} iterations");

    // ------------------------------------------------------------------ 3. real run
    let report = session.query(&Query::TopK {
        k,
        config: FrogWildConfig {
            num_walkers: budget,
            iterations,
            sync_probability: 0.7,
            ..FrogWildConfig::default()
        },
    })?;
    let truth = exact_pagerank(&graph, 0.15, 200, 1e-12);
    let achieved = mass_captured(&report.estimate, &truth.scores, k);
    println!(
        "\nachieved: captured {:.4} of the optimal top-{k} mass ({:.1}% of optimum)",
        achieved.captured,
        achieved.normalized() * 100.0
    );

    // Per-vertex confidence intervals on the head of the list, and the probability that
    // consecutive entries are ordered correctly.
    println!("\nhead of the estimated ranking with 95% Wilson intervals:");
    let top: Vec<VertexId> = report.top_vertices().into_iter().take(8).collect();
    for (rank, &v) in top.iter().enumerate() {
        let count = (report.estimate[v as usize] * budget as f64).round() as u64;
        let interval = wilson_interval(count.min(budget), budget, 0.05);
        let separation = if rank + 1 < top.len() {
            let next_count =
                (report.estimate[top[rank + 1] as usize] * budget as f64).round() as u64;
            separation_probability(count.min(budget), next_count.min(budget), budget)
        } else {
            1.0
        };
        println!(
            "  #{:<2} vertex {:<8} π̂ = {:.5}  [{:.5}, {:.5}]  P(correctly above next) = {:.2}",
            rank + 1,
            v,
            report.estimate[v as usize],
            interval.low,
            interval.high,
            separation
        );
    }
    Ok(())
}
