//! A PageRank query service: one long-lived `Session` serving a mixed query stream.
//!
//! The serving-oriented prior work (FAST-PPR, PowerWalk) treats PageRank estimation as
//! a query service over precomputed state. This example demonstrates that shape for
//! FrogWild: a synthetic Twitter-shaped follower graph is partitioned **once** at
//! session build, and the session then answers a mixed stream of global top-k and
//! personalized-PageRank queries. At the end it replays the same engine queries the
//! *one-shot* way — re-partitioning per call, what the deprecated `run_frogwild` free
//! function did — and prints the measured amortization win.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example query_service
//! ```

use frogwild::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() -> Result<()> {
    let mut rng = SmallRng::seed_from_u64(2025);
    let graph = frogwild_graph::generators::twitter_like(20_000, &mut rng);
    println!(
        "follower graph: {} users, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // ------------------------------------------------------------ build the service
    let mut session = Session::builder(&graph)
        .machines(16)
        .partitioner(PartitionerKind::Oblivious)
        .seed(9)
        .build()?;
    println!(
        "session up: {} machines, {} partitioner, replication factor {:.2}, partitioned in {:.3}s\n",
        session.num_machines(),
        session.partitioner_name(),
        session.replication_factor(),
        session.stats().partition_seconds,
    );

    // ------------------------------------------------------------ the query stream
    // A mixed stream, the way a front end would issue it: "popular accounts" shelves
    // at different freshness/cost points, interleaved with per-user recommendations.
    let topk_config = |walkers: u64, ps: f64| FrogWildConfig {
        num_walkers: walkers,
        iterations: 4,
        sync_probability: ps,
        ..FrogWildConfig::default()
    };
    let stream: Vec<(&str, Query)> = vec![
        (
            "popular@100 fresh",
            Query::TopK {
                k: 100,
                config: topk_config(200_000, 0.7),
            },
        ),
        (
            "rec for user 17",
            Query::Ppr {
                source: 17,
                k: 10,
                teleport_probability: 0.15,
                method: PprMethod::ForwardPush { epsilon: 1e-6 },
            },
        ),
        (
            "popular@20 cheap",
            Query::TopK {
                k: 20,
                config: topk_config(50_000, 0.4),
            },
        ),
        (
            "rec for user 4242",
            Query::Ppr {
                source: 4242,
                k: 10,
                teleport_probability: 0.15,
                method: PprMethod::ForwardPush { epsilon: 1e-6 },
            },
        ),
        (
            "popular@100 fresh",
            Query::TopK {
                k: 100,
                config: topk_config(200_000, 0.7),
            },
        ),
        (
            "rec for user 999",
            Query::Ppr {
                source: 999,
                k: 10,
                teleport_probability: 0.15,
                method: PprMethod::ForwardPush { epsilon: 1e-6 },
            },
        ),
        (
            "popular@50 cheap",
            Query::TopK {
                k: 50,
                config: topk_config(50_000, 0.4),
            },
        ),
        (
            "popular@100 fresh",
            Query::TopK {
                k: 100,
                config: topk_config(200_000, 0.7),
            },
        ),
    ];

    println!(
        "{:<20} {:<34} {:>12} {:>12} {:>12}",
        "query", "algorithm", "net bytes", "sim (s)", "host (s)"
    );
    let service_started = Instant::now();
    for (label, query) in &stream {
        let response = session.query(query)?;
        println!(
            "{:<20} {:<34} {:>12} {:>12.4} {:>12.4}",
            label,
            response
                .algorithm
                .split(" walkers")
                .next()
                .unwrap_or(&response.algorithm),
            response.cost.network_bytes,
            response.cost.simulated_seconds,
            response.cost.host_seconds,
        );
    }
    let service_seconds = service_started.elapsed().as_secs_f64();

    let stats = session.stats();
    println!(
        "\nsession totals: {} queries, {} net bytes, {:.4}s simulated, {:.4}s host",
        stats.queries_served,
        stats.total_network_bytes,
        stats.total_simulated_seconds,
        stats.total_host_seconds,
    );
    println!(
        "partitioning paid once: {:.4}s, amortized {:.4}s/query",
        stats.partition_seconds,
        stats.amortized_partition_seconds(),
    );

    // ------------------------------------------------------------ one-shot baseline
    // Replay the engine-backed queries the pre-session way: partition per call.
    let cluster = ClusterConfig::new(16, 9);
    let baseline_started = Instant::now();
    let mut baseline_partition_seconds = 0.0;
    for (_, query) in &stream {
        if let Query::TopK { config, .. } = query {
            let partition_started = Instant::now();
            let pg = partition_graph(&graph, &cluster); // re-partition, every time
            baseline_partition_seconds += partition_started.elapsed().as_secs_f64();
            let _ = run_frogwild_on(&pg, config)?;
        }
    }
    let baseline_seconds = baseline_started.elapsed().as_secs_f64();

    let engine_queries = stream
        .iter()
        .filter(|(_, q)| matches!(q, Query::TopK { .. }))
        .count();
    println!(
        "\none-shot baseline (re-partition per call): {engine_queries} top-k queries took {baseline_seconds:.4}s host, \
         of which {baseline_partition_seconds:.4}s was spent re-partitioning"
    );
    println!(
        "session service (partition once):          full {}-query stream took {:.4}s host ({:.4}s partitioning)",
        stream.len(),
        service_seconds + stats.partition_seconds,
        stats.partition_seconds,
    );
    println!(
        "amortization win: {:.1}x less time spent partitioning across the stream",
        baseline_partition_seconds / stats.partition_seconds.max(1e-9),
    );
    Ok(())
}
