//! Keyword extraction with approximate PageRank (TextRank), the paper's second
//! motivating application.
//!
//! TextRank builds a graph whose vertices are content words and whose edges connect
//! words co-occurring within a small window; PageRank over that graph ranks keywords.
//! When the corpus is large or arrives continuously, recomputing the full PageRank
//! vector per document batch is wasteful — only the top keywords matter, which is
//! exactly the regime FrogWild targets.
//!
//! This example runs the full pipeline on a built-in text (no external data needed):
//! tokenize → co-occurrence graph → FrogWild top-k → compare with exact PageRank.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example keywords
//! ```

use frogwild::prelude::*;
use frogwild_graph::{DanglingPolicy, GraphBuilder};
use std::collections::HashMap;

/// A public-domain style passage about graph processing; repeated phrases give the
/// co-occurrence graph realistic hubs.
const TEXT: &str = "
Large scale graph processing is becoming increasingly important for the analysis of data
from social networks, web pages and recommendation systems. Graph algorithms are hard to
implement in general distributed computation frameworks, so specialized graph engines
partition the graph across machines and expose vertex programs. PageRank computation is
the canonical task for a graph engine: PageRank estimates the importance of each vertex
in the graph, and the heaviest PageRank vertices identify influential users, important
web pages or key words in a text. Computing the complete PageRank vector is expensive
because every iteration must synchronize every vertex replica over the network. A fast
approximation of the top PageRank vertices needs only a small number of random walks:
each walker jumps across the graph, teleports with a small probability, and the vertices
where walkers stop concentrate around the important vertices. Partial synchronization of
vertex replicas reduces network traffic further, because only a fraction of the replicas
of each vertex must receive the updated walker counts. The graph engine, the random
walks and the partial synchronization together give a fast approximation of the top
PageRank vertices with a fraction of the network cost of the exact computation.
";

/// Small stop-word list; everything else longer than two characters is a candidate
/// keyword vertex, approximating the paper's "nouns, verbs and adjectives" filter.
const STOP_WORDS: &[&str] = &[
    "the", "and", "for", "are", "with", "that", "this", "from", "each", "must", "only", "its",
    "was", "has", "have", "not", "but", "can", "over", "into", "because", "every", "very", "their",
    "where", "which", "needs", "gives", "give", "together", "becoming", "is", "of", "in", "to",
    "a", "an", "so", "or",
];

/// Tokenizes the text, maps distinct words to vertex ids, and connects words
/// co-occurring within a window of three tokens (in both directions, as TextRank does).
fn build_cooccurrence_graph(text: &str) -> (DiGraph, Vec<String>) {
    let tokens: Vec<String> = text
        .split(|c: char| !c.is_alphabetic())
        .map(|w| w.to_lowercase())
        .filter(|w| w.len() > 2 && !STOP_WORDS.contains(&w.as_str()))
        .collect();

    let mut word_ids: HashMap<String, u32> = HashMap::new();
    let mut words: Vec<String> = Vec::new();
    let ids: Vec<u32> = tokens
        .iter()
        .map(|w| {
            *word_ids.entry(w.clone()).or_insert_with(|| {
                words.push(w.clone());
                (words.len() - 1) as u32
            })
        })
        .collect();

    let window = 3usize;
    let mut builder = GraphBuilder::new(words.len());
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..(i + 1 + window).min(ids.len())] {
            if a != b {
                builder.add_edge_unchecked(a, b);
                builder.add_edge_unchecked(b, a);
            }
        }
    }
    let graph = builder
        .dedup(true)
        .dangling_policy(DanglingPolicy::SelfLoop)
        .build()
        .expect("valid co-occurrence graph");
    (graph, words)
}

fn main() -> Result<()> {
    let (graph, words) = build_cooccurrence_graph(TEXT);
    println!(
        "co-occurrence graph: {} distinct words, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let k = 10;
    let truth = exact_pagerank(&graph, 0.15, 200, 1e-12);

    // The graph is tiny, so a handful of machines and walkers suffice; the point is the
    // pipeline, not the scale. In a streaming-corpus deployment the session would stay
    // alive and answer a top-k query per document batch.
    let mut session = Session::builder(&graph).machines(4).seed(3).build()?;
    let config = FrogWildConfig {
        num_walkers: 20_000,
        iterations: 5,
        sync_probability: 0.7,
        ..FrogWildConfig::default()
    };
    let report = session.query(&Query::TopK { k, config })?;

    let accuracy = mass_captured(&report.estimate, &truth.scores, k);
    let ident = exact_identification(&report.estimate, &truth.scores, k);
    println!(
        "FrogWild vs exact TextRank: mass captured {:.3}, exact identification {:.2}\n",
        accuracy.normalized(),
        ident
    );

    println!(
        "{:<6} {:<22} {:<22}",
        "rank", "FrogWild keyword", "exact TextRank keyword"
    );
    let approx_top = report.top_vertices();
    let exact_top = top_k(&truth.scores, k);
    for i in 0..k {
        println!(
            "{:<6} {:<22} {:<22}",
            i + 1,
            approx_top
                .get(i)
                .map(|&v| words[v as usize].as_str())
                .unwrap_or("-"),
            exact_top
                .get(i)
                .map(|&v| words[v as usize].as_str())
                .unwrap_or("-"),
        );
    }

    println!(
        "\nThe approximate list agrees on the dominant keywords (graph, pagerank, vertices, \
         network, ...) while touching only a few thousand walker messages — the keyword \
         use-case from the paper's introduction."
    );
    Ok(())
}
