//! Offline, in-tree stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so the
//! workspace vendors the *exact* API surface it uses, implemented from scratch:
//!
//! * [`rngs::SmallRng`] — a small, fast, non-cryptographic PRNG (xoshiro256++,
//!   the same algorithm the real `rand 0.8` uses for `SmallRng` on 64-bit targets).
//! * [`SeedableRng::seed_from_u64`] — splitmix64-based seeding, so every experiment
//!   is reproducible from a single integer seed.
//! * [`Rng::gen_range`] over integer and float ranges, [`Rng::gen`] for standard
//!   distributions, and [`Rng::gen_bool`] for Bernoulli coins.
//!
//! Statistical quality matches the upstream algorithms; the *stream* of values is not
//! guaranteed to be bit-identical to the real crate (no code in this workspace relies
//! on that — only on determinism under a fixed seed, which holds).

#![warn(missing_docs)]

/// The core of a random number generator: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over all values for integers, uniform in `[0, 1)` for floats).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples a value uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample from an empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        // Compare against a 53-bit uniform in [0, 1); p == 1.0 always passes.
        p >= 1.0 || unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A uniform `f64` in `[0, 1)` from the top 53 bits of a random word.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// SplitMix64 step, used for seeding the main generator from a single `u64`.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose whole stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++.
    ///
    /// Mirrors `rand::rngs::SmallRng` on 64-bit platforms. Period 2^256 − 1,
    /// equidistributed in four dimensions — far more than the simulations here need.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Expand the 64-bit seed through splitmix64 as the xoshiro authors
            // recommend; guards against the all-zero state.
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions over types: the standard (full-range / unit-interval) distribution
/// and uniform sampling over ranges.
pub mod distributions {
    use super::{unit_f64, RngCore};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value from the distribution.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type: uniform over all values for integers
    /// and `bool`, uniform in `[0, 1)` for floats.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                #[inline]
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
        }
    }

    /// Uniform sampling over ranges, mirroring `rand::distributions::uniform`.
    pub mod uniform {
        use super::super::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range-like object from which a single value can be sampled uniformly.
        pub trait SampleRange<T> {
            /// Draws one value uniformly from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
            /// Whether the range contains no values.
            fn is_empty(&self) -> bool;
        }

        /// Multiply-shift (Lemire) bounded sampling: uniform in `0..span`.
        #[inline]
        fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
            debug_assert!(span > 0);
            // A single 128-bit multiply gives a value in 0..span with bias at most
            // 2^-64 per draw — irrelevant at the scales simulated here.
            (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
        }

        macro_rules! impl_sample_range_uint {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    #[inline]
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let span = (self.end - self.start) as u64;
                        self.start + bounded(rng, span) as $t
                    }
                    #[inline]
                    fn is_empty(&self) -> bool {
                        self.start >= self.end
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    #[inline]
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        let span = (hi - lo) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        lo + bounded(rng, span + 1) as $t
                    }
                    #[inline]
                    fn is_empty(&self) -> bool {
                        self.start() > self.end()
                    }
                }
            )*};
        }
        impl_sample_range_uint!(u8, u16, u32, u64, usize);

        macro_rules! impl_sample_range_int {
            ($($t:ty => $u:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    #[inline]
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                        self.start.wrapping_add(bounded(rng, span) as $t)
                    }
                    #[inline]
                    fn is_empty(&self) -> bool {
                        self.start >= self.end
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    #[inline]
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        lo.wrapping_add(bounded(rng, span + 1) as $t)
                    }
                    #[inline]
                    fn is_empty(&self) -> bool {
                        self.start() > self.end()
                    }
                }
            )*};
        }
        impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

        macro_rules! impl_sample_range_float {
            // `$bits` is the mantissa precision of `$t`: the unit uniform is built on a
            // native-precision lattice so a 53-bit f64 draw is never rounded *up* to
            // 1.0 by an f32 cast.
            ($($t:ty => $bits:expr),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    #[inline]
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let u = (rng.next_u64() >> (64 - $bits)) as $t
                            / (1u64 << $bits) as $t;
                        let candidate = self.start + (self.end - self.start) * u;
                        // Floating-point rounding of `start + span * u` can land on
                        // `end` even though u < 1; keep the half-open contract.
                        if candidate < self.end {
                            candidate
                        } else {
                            self.end.next_down().max(self.start)
                        }
                    }
                    #[inline]
                    fn is_empty(&self) -> bool {
                        // NaN endpoints make the range empty, so compare via
                        // partial_cmp rather than a negated `<`.
                        !matches!(
                            self.start.partial_cmp(&self.end),
                            Some(std::cmp::Ordering::Less)
                        )
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    #[inline]
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        // Include the upper endpoint by drawing on [0, 1] via a
                        // native-precision lattice stretched to the closed interval.
                        let u = (rng.next_u64() >> (64 - $bits)) as $t
                            / ((1u64 << $bits) - 1) as $t;
                        (lo + (hi - lo) * u).clamp(lo, hi)
                    }
                    #[inline]
                    fn is_empty(&self) -> bool {
                        !matches!(
                            self.start().partial_cmp(self.end()),
                            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                        )
                    }
                }
            )*};
        }
        impl_sample_range_float!(f32 => 24, f64 => 53);
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic_and_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_extremes_and_frequency() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 50_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn float_ranges_exclude_the_open_endpoint() {
        let mut rng = SmallRng::seed_from_u64(4);
        // Wide range: the 24-bit f32 lattice must never reach 1.0.
        for _ in 0..5_000_000 {
            let x = rng.gen_range(0.0f32..1.0);
            assert!(x < 1.0, "f32 sample hit the open endpoint");
        }
        // Degenerate range one ULP wide: `start + span * u` rounds onto `end`
        // almost every draw, exercising the exclusivity clamp.
        let lo = 1.0f32;
        let hi = lo.next_up();
        for _ in 0..1_000 {
            let x = rng.gen_range(lo..hi);
            assert!(x >= lo && x < hi, "degenerate f32 range produced {x}");
            let y = rng.gen_range((lo as f64)..(hi as f64));
            assert!(y >= lo as f64 && y < hi as f64);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = rng.gen_range(5usize..5);
    }
}
