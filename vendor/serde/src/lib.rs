//! Offline, in-tree stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The workspace only uses serde for `#[derive(Serialize, Deserialize)]` annotations
//! on result/report types (no code path actually serializes yet — CSV/markdown output
//! goes through `frogwild::report`). The build environment has no crates.io access, so
//! this crate provides the two derive macros as no-ops: the annotations compile, carry
//! their documentation value, and can be switched to the real serde by changing one
//! line in the workspace dependency table once a registry is available.
//!
//! `attributes(serde)` is declared so any future `#[serde(...)]` field attributes
//! remain legal at the use site.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`'s derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`'s derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
