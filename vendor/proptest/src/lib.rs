//! Offline, in-tree stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the subset of proptest this workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map` combinators,
//! * range strategies (`0usize..100`, `0.0f64..=1.0`, …), tuple strategies,
//!   [`strategy::Just`] and [`strategy::any`],
//! * [`collection::vec`] for variable-length vectors,
//! * the [`proptest!`] macro with optional `#![proptest_config(...)]`, and the
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` assertion macros.
//!
//! Semantics: each test body runs [`ProptestConfig::cases`] times against values drawn
//! from a deterministic per-test RNG (seeded from the test's name, overridable with
//! `PROPTEST_SEED`), so failures are reproducible. Unlike the real proptest there is
//! **no shrinking** — a failing case reports the panic from the raw sampled input. For
//! the invariant-style properties in this workspace that trade-off is acceptable, and
//! the real crate can be swapped back in via the workspace dependency table.

#![warn(missing_docs)]

pub use rand;

/// How many random cases each property runs, and (future) other knobs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest default. Properties in this workspace are cheap enough.
        ProptestConfig { cases: 256 }
    }
}

/// Derives the deterministic per-test RNG. Public for the [`proptest!`] expansion only.
#[doc(hidden)]
pub fn __seed_rng(test_name: &str) -> rand::rngs::SmallRng {
    use rand::SeedableRng;
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x5EED_F00D_CAFE_D00D);
    // FNV-1a over the test name keeps distinct tests on distinct streams.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    rand::rngs::SmallRng::seed_from_u64(base ^ h)
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators/primitive strategies built on it.

    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an associated type from an RNG.
    ///
    /// Mirrors proptest's `Strategy` minus shrinking: `sample` plays the role of
    /// `new_tree(..).current()`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generates a value, then uses it to build and sample a second strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical "any value" strategy (the full domain for integers).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value of the type.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.gen::<f64>()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.gen::<f32>()
        }
    }

    /// Strategy for the full domain of `T`; see [`any`].
    #[derive(Clone, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy generating any value of `T` (e.g. `any::<u64>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for vectors with element strategy `S`; see [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of values from `element`, with length drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file normally imports.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg_pat:pat in $arg_strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::__seed_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(
                        let $arg_pat =
                            $crate::strategy::Strategy::sample(&($arg_strategy), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn ranges_tuples_and_vec_sample_in_bounds() {
        let mut rng = crate::__seed_rng("self_test");
        let strat = (1usize..10, 0.0f64..=1.0);
        for _ in 0..500 {
            let (n, p) = strat.sample(&mut rng);
            assert!((1..10).contains(&n));
            assert!((0.0..=1.0).contains(&p));
        }
        let v = crate::collection::vec(0u32..5, 2..7);
        for _ in 0..500 {
            let xs = v.sample(&mut rng);
            assert!((2..7).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn flat_map_respects_dependent_bounds() {
        let mut rng = crate::__seed_rng("flat_map_test");
        let strat =
            (2usize..40).prop_flat_map(|n| (Just(n), crate::collection::vec(0..n as u32, 1..50)));
        for _ in 0..500 {
            let (n, edges) = strat.sample(&mut rng);
            assert!(edges.iter().all(|&e| (e as usize) < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn the_macro_itself_works(a in 0u64..100, b in 0u64..100) {
            prop_assert_eq!(a + b, b + a);
            prop_assert!(a < 100 && b < 100);
        }
    }
}
