//! Offline, in-tree stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the API surface this workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`] — backed by a simple
//! wall-clock measurement loop instead of criterion's statistical machinery:
//!
//! * each benchmark warms up briefly, then takes up to `sample_size` samples within a
//!   fixed per-benchmark time budget (`CRITERION_BUDGET_MS`, default 300 ms),
//! * the median / min / max time per iteration is printed, plus throughput when a
//!   [`Throughput`] was declared for the group.
//!
//! The numbers are honest wall-clock medians and are good enough for comparative
//! runs (`p_s` sweeps, partitioner A vs B). Swap the workspace dependency back to the
//! real criterion for publication-grade statistics.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement knobs shared by every benchmark in a run.
#[derive(Clone, Debug)]
struct Settings {
    sample_size: usize,
    budget: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        let budget_ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(300);
        Settings {
            sample_size: 100,
            budget: Duration::from_millis(budget_ms),
        }
    }
}

/// The benchmark manager: entry point handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let settings = self.settings.clone();
        run_one(&id.into(), &settings, None, |b| f(b));
        self
    }
}

/// A named collection of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Declares how much work one iteration performs, enabling throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, &self.settings, self.throughput, |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.text);
        run_one(&full, &self.settings, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; reporting is incremental).
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id like `"{function_name}/{parameter}"`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// The amount of work one benchmark iteration represents.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iteration processes this many abstract elements (edges, rows, …).
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code under test.
pub struct Bencher {
    samples: Vec<Duration>,
    settings: Settings,
}

impl Bencher {
    /// Measures `routine`, taking several timed samples.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: one untimed run (fills caches, triggers lazy init).
        black_box(routine());
        let started = Instant::now();
        for _ in 0..self.settings.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.settings.budget {
                break;
            }
        }
    }
}

fn run_one<F>(name: &str, settings: &Settings, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        settings: settings.clone(),
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{name:<60} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let (min, max) = (samples[0], samples[samples.len() - 1]);
    let mut line = format!(
        "{name:<60} time: [{} {} {}] ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max),
        samples.len()
    );
    if let Some(t) = throughput {
        let per_sec = |units: u64| units as f64 / median.as_secs_f64();
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: {:.3} Melem/s", per_sec(n) / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(
                    "  thrpt: {:.3} MiB/s",
                    per_sec(n) / (1024.0 * 1024.0)
                ));
            }
        }
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("self_test");
        group.sample_size(5);
        group.throughput(Throughput::Elements(1000));
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}
